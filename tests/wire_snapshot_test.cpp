// Property tests for the unified wire::Snapshot frame (DESIGN.md §9):
// round-trips for every registered durable policy, typed rejection of
// corrupt payloads, and restorability of pre-refactor (version-0)
// snapshots via the per-policy compatibility decoders.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "partition/factory.h"
#include "wire/error.h"
#include "wire/snapshot.h"

namespace gk::partition {
namespace {

#include "v0_snapshots.inc"

using workload::make_member_id;

workload::MemberProfile profile_of(std::uint64_t id) {
  workload::MemberProfile p;
  p.id = make_member_id(id);
  p.member_class =
      id % 3 == 0 ? workload::MemberClass::kLong : workload::MemberClass::kShort;
  p.loss_rate = id % 3 == 0 ? 0.2 : 0.01;
  return p;
}

SchemeConfig test_config() {
  SchemeConfig config;
  config.degree = 4;
  config.s_period_epochs = 2;
  config.bin_upper_bounds = {0.05, 1.0};
  return config;
}

std::unique_ptr<engine::CoreServer> server_of(const std::string& scheme,
                                              std::uint64_t seed) {
  return make_server(scheme, test_config(), Rng(seed));
}

/// Round-trip every registered durable policy at several population sizes:
/// the snapshot must be versioned, carry the scheme name, restore into a
/// fresh server with identical metadata, re-encode byte-identically, and
/// leave the restored server able to continue the session in lock-step
/// with the original.
class SnapshotRoundTrip : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Populations, SnapshotRoundTrip,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{10000}),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST_P(SnapshotRoundTrip, EveryDurablePolicy) {
  const std::size_t members = GetParam();
  for (const auto& scheme : registered_policies()) {
    auto original = server_of(scheme, 0xfeed);
    if (!original->core().policy().info().durable) continue;
    SCOPED_TRACE("scheme " + scheme + " members " + std::to_string(members));

    original->reserve(members);
    for (std::size_t i = 0; i < members; ++i) (void)original->join(profile_of(i));
    (void)original->end_epoch();

    const auto bytes = original->save_state();
    ASSERT_TRUE(wire::Snapshot::is_versioned(bytes));
    const auto decoded = wire::Snapshot::decode(bytes);
    EXPECT_EQ(decoded.scheme, scheme);
    EXPECT_EQ(decoded.ledger.size(), members);

    auto restored = server_of(scheme, 0xd1f7);  // different seed on purpose
    restored->restore_state(bytes);
    EXPECT_EQ(restored->epoch(), original->epoch());
    EXPECT_EQ(restored->size(), original->size());
    EXPECT_EQ(restored->group_key_id(), original->group_key_id());
    EXPECT_EQ(restored->group_key().key, original->group_key().key);
    EXPECT_EQ(restored->group_key().version, original->group_key().version);

    // Saving what was just restored must reproduce the exact bytes.
    EXPECT_EQ(restored->save_state(), bytes);

    // Continuation stays deterministic: both servers see the same ops and
    // must emerge with the same group key.
    const auto fresh = profile_of(members + 17);
    (void)original->join(fresh);
    (void)restored->join(fresh);
    if (members > 0) {
      original->leave(make_member_id(0));
      restored->leave(make_member_id(0));
    }
    (void)original->end_epoch();
    (void)restored->end_epoch();
    EXPECT_EQ(restored->group_key().key, original->group_key().key);
    EXPECT_EQ(restored->group_key().version, original->group_key().version);
  }
}

// ------------------------------------------------ corrupt-payload rejection

std::vector<std::uint8_t> one_tree_snapshot() {
  auto server = server_of("one-tree", 0xabcd);
  for (std::uint64_t i = 0; i < 12; ++i) (void)server->join(profile_of(i));
  (void)server->end_epoch();
  return server->save_state();
}

TEST(SnapshotRejection, TruncationThrowsTypedError) {
  const auto bytes = one_tree_snapshot();
  // Every proper prefix must be rejected with a WireError, never an abort
  // or an out-of-bounds read. (Step keeps the sweep fast.)
  for (std::size_t keep = 4; keep < bytes.size(); keep += 7) {
    auto server = server_of("one-tree", 0x1111);
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(server->restore_state(cut), wire::WireError) << "prefix " << keep;
  }
}

TEST(SnapshotRejection, UnknownVersionThrowsBadVersion) {
  auto bytes = one_tree_snapshot();
  bytes[4] = 0x7f;  // version byte follows the 4-byte magic
  auto server = server_of("one-tree", 0x2222);
  try {
    server->restore_state(bytes);
    FAIL() << "future-versioned snapshot was accepted";
  } catch (const wire::WireError& e) {
    EXPECT_EQ(e.fault(), wire::WireFault::kBadVersion);
  }
}

TEST(SnapshotRejection, WrongSchemeThrowsSchemeMismatch) {
  auto qt = server_of("qt", 0x3333);
  for (std::uint64_t i = 0; i < 6; ++i) (void)qt->join(profile_of(i));
  (void)qt->end_epoch();
  const auto bytes = qt->save_state();
  auto tt = server_of("tt", 0x4444);
  try {
    tt->restore_state(bytes);
    FAIL() << "qt snapshot restored into a tt server";
  } catch (const wire::WireError& e) {
    EXPECT_EQ(e.fault(), wire::WireFault::kSchemeMismatch);
  }
}

TEST(SnapshotRejection, CorruptFramingThrowsMalformed) {
  const auto bytes = one_tree_snapshot();
  // Offsets inside the "one-tree" header: magic(4) version(1) name-len(1)
  // name(8) epoch(8) watermark(8) → dek-present flag at 30, ledger count
  // at 31.
  {
    auto corrupt = bytes;
    corrupt[30] = 7;  // dek-present must be 0 or 1
    auto server = server_of("one-tree", 0x5555);
    try {
      server->restore_state(corrupt);
      FAIL() << "bad dek flag accepted";
    } catch (const wire::WireError& e) {
      EXPECT_EQ(e.fault(), wire::WireFault::kMalformed);
    }
  }
  {
    auto corrupt = bytes;
    corrupt[38] = 0xff;  // ledger count far beyond the payload
    auto server = server_of("one-tree", 0x6666);
    try {
      server->restore_state(corrupt);
      FAIL() << "oversized ledger count accepted";
    } catch (const wire::WireError& e) {
      EXPECT_EQ(e.fault(), wire::WireFault::kTruncated);
    }
  }
  {
    auto corrupt = bytes;
    corrupt.insert(corrupt.end(), {0xde, 0xad, 0xbe});
    auto server = server_of("one-tree", 0x7777);
    try {
      server->restore_state(corrupt);
      FAIL() << "trailing bytes accepted";
    } catch (const wire::WireError& e) {
      EXPECT_EQ(e.fault(), wire::WireFault::kMalformed);
    }
  }
}

// ----------------------------------------- pre-refactor (v0) compatibility

/// Drives a restored v0 server one more epoch to prove it is fully live,
/// not just metadata-consistent.
void expect_restored_v0(engine::CoreServer& server, std::uint64_t expect_key_id,
                        std::uint32_t expect_version) {
  EXPECT_EQ(server.epoch(), 4u);
  EXPECT_EQ(server.size(), 8u);
  EXPECT_EQ(crypto::raw(server.group_key_id()), expect_key_id);
  EXPECT_EQ(server.group_key().version, expect_version);
  (void)server.join(profile_of(100));
  (void)server.end_epoch();
  EXPECT_EQ(server.size(), 9u);
  EXPECT_EQ(server.epoch(), 5u);
}

TEST(SnapshotV0Compat, OneTreeFixtureRestores) {
  auto server = make_server("one-tree", test_config(), Rng(0x5eed0001));
  ASSERT_FALSE(wire::Snapshot::is_versioned(
      std::vector<std::uint8_t>(std::begin(kOneTreeV0), std::end(kOneTreeV0))));
  server->restore_state(
      std::vector<std::uint8_t>(std::begin(kOneTreeV0), std::end(kOneTreeV0)));
  expect_restored_v0(*server, 1, 2);
}

TEST(SnapshotV0Compat, QtFixtureRestores) {
  auto server = make_server("qt", test_config(), Rng(0x5eed0002));
  server->restore_state(
      std::vector<std::uint8_t>(std::begin(kQtV0), std::end(kQtV0)));
  expect_restored_v0(*server, 2, 2);
}

TEST(SnapshotV0Compat, TtFixtureRestores) {
  auto server = make_server("tt", test_config(), Rng(0x5eed0003));
  server->restore_state(
      std::vector<std::uint8_t>(std::begin(kTtV0), std::end(kTtV0)));
  expect_restored_v0(*server, 3, 2);
}

TEST(SnapshotV0Compat, MultiTreeFixtureRestores) {
  auto server = make_server("loss-bin", test_config(), Rng(0x5eed0004));
  server->restore_state(
      std::vector<std::uint8_t>(std::begin(kMultiTreeV0), std::end(kMultiTreeV0)));
  expect_restored_v0(*server, 1, 2);
}

TEST(SnapshotV0Compat, LegacyGarbageStillThrowsTyped) {
  // Unversioned bytes route to the per-policy legacy decoder, whose
  // bounds-checked reader rejects garbage with ContractViolation — an
  // exception a recovery path can catch, not an abort.
  std::vector<std::uint8_t> garbage = {0x01, 0x02, 0x03};
  auto server = server_of("one-tree", 0x8888);
  EXPECT_THROW(server->restore_state(garbage), gk::ContractViolation);
}

}  // namespace
}  // namespace gk::partition
