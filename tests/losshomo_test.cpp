#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "lkh/key_ring.h"
#include "losshomo/multi_tree_server.h"

namespace gk::losshomo {
namespace {

using workload::make_member_id;

TEST(MultiTree, PlacesByReportedLoss) {
  MultiTreeServer server(4, {0.05, 1.0}, Placement::kLossHomogenized, Rng(1));
  (void)server.join(make_member_id(1), 0.02);
  (void)server.join(make_member_id(2), 0.20);
  (void)server.join(make_member_id(3), 0.05);  // boundary: low tree
  (void)server.join(make_member_id(4), 0.051);
  EXPECT_EQ(server.tree_of(make_member_id(1)), 0u);
  EXPECT_EQ(server.tree_of(make_member_id(2)), 1u);
  EXPECT_EQ(server.tree_of(make_member_id(3)), 0u);
  EXPECT_EQ(server.tree_of(make_member_id(4)), 1u);
  EXPECT_EQ(server.tree_size(0), 2u);
  EXPECT_EQ(server.tree_size(1), 2u);
}

TEST(MultiTree, RandomPlacementSpreadsMembers) {
  MultiTreeServer server(4, {0.05, 1.0}, Placement::kRandom, Rng(2));
  for (std::uint64_t i = 0; i < 200; ++i) (void)server.join(make_member_id(i), 0.02);
  EXPECT_GT(server.tree_size(0), 50u);
  EXPECT_GT(server.tree_size(1), 50u);
}

TEST(MultiTree, ExtremeLossFallsInLastBin) {
  MultiTreeServer server(4, {0.05, 0.3}, Placement::kLossHomogenized, Rng(3));
  (void)server.join(make_member_id(1), 0.9);  // above every bound
  EXPECT_EQ(server.tree_of(make_member_id(1)), 1u);
}

TEST(MultiTree, MembersAcrossTreesShareTheGroupKey) {
  MultiTreeServer server(3, {0.05, 1.0}, Placement::kLossHomogenized, Rng(4));
  std::map<std::uint64_t, lkh::KeyRing> rings;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const double loss = (i % 3 == 0) ? 0.2 : 0.02;
    const auto reg = server.join(make_member_id(i), loss);
    rings.emplace(i, lkh::KeyRing(make_member_id(i), reg.leaf_id, reg.individual_key));
  }
  const auto out = server.end_epoch();
  for (auto& [id, ring] : rings) {
    ring.process(out.message);
    EXPECT_TRUE(ring.holds(server.group_key_id(), server.group_key().version))
        << "member " << id;
  }
}

TEST(MultiTree, DepartureLocksOutLeaverOnly) {
  MultiTreeServer server(3, {0.05, 1.0}, Placement::kLossHomogenized, Rng(5));
  std::map<std::uint64_t, lkh::KeyRing> rings;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto reg = server.join(make_member_id(i), i < 8 ? 0.02 : 0.2);
    rings.emplace(i, lkh::KeyRing(make_member_id(i), reg.leaf_id, reg.individual_key));
  }
  const auto setup = server.end_epoch();
  for (auto& [id, ring] : rings) ring.process(setup.message);

  server.leave(make_member_id(3));
  const auto out = server.end_epoch();
  for (auto& [id, ring] : rings) ring.process(out.message);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const bool holds =
        rings.at(i).holds(server.group_key_id(), server.group_key().version);
    EXPECT_EQ(holds, i != 3) << "member " << i;
  }
}

TEST(MultiTree, DepartureInOneTreeLeavesOtherTreesUntouched) {
  MultiTreeServer server(4, {0.05, 1.0}, Placement::kLossHomogenized, Rng(6));
  for (std::uint64_t i = 0; i < 32; ++i)
    (void)server.join(make_member_id(i), i < 16 ? 0.02 : 0.2);
  (void)server.end_epoch();

  server.leave(make_member_id(20));  // high-loss tree member
  const auto out = server.end_epoch();
  // Tree 0 (low loss) saw no membership change: zero wraps from it.
  EXPECT_EQ(out.per_tree_cost[0], 0u);
  EXPECT_GT(out.per_tree_cost[1], 0u);
}

TEST(MultiTree, PerTreeCostsSumToMessageMinusDekWraps) {
  MultiTreeServer server(4, {0.05, 1.0}, Placement::kLossHomogenized, Rng(7));
  for (std::uint64_t i = 0; i < 32; ++i)
    (void)server.join(make_member_id(i), i % 2 ? 0.02 : 0.2);
  (void)server.end_epoch();
  server.leave(make_member_id(1));
  server.leave(make_member_id(2));
  const auto out = server.end_epoch();
  const auto tree_sum = out.per_tree_cost[0] + out.per_tree_cost[1];
  // Two DEK wraps (one per non-empty tree) on a compromised epoch.
  EXPECT_EQ(out.message.cost(), tree_sum + 2u);
}

}  // namespace
}  // namespace gk::losshomo
