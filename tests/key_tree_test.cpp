#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "lkh/key_queue.h"
#include "lkh/key_ring.h"
#include "lkh/key_tree.h"

namespace gk::lkh {
namespace {

using workload::make_member_id;
using workload::MemberId;

/// Test fixture wiring a server-side tree to member-side key rings, so
/// every test can assert the end-to-end property that matters: members can
/// (or cannot) recover the group key from real rekey messages.
class Group {
 public:
  explicit Group(unsigned degree, std::uint64_t seed = 1234)
      : tree_(degree, Rng(seed)) {}

  void stage_join(std::uint64_t id) {
    const auto member = make_member_id(id);
    const auto grant = tree_.insert(member);
    rings_.emplace(id, KeyRing(member, grant.leaf_id, grant.individual_key));
  }

  void stage_leave(std::uint64_t id) {
    tree_.remove(make_member_id(id));
    evicted_.emplace(id, std::move(rings_.at(id)));
    rings_.erase(id);
  }

  RekeyMessage commit() {
    auto message = tree_.commit(epoch_++);
    for (auto& [id, ring] : rings_) ring.process(message);
    for (auto& [id, ring] : evicted_) ring.process(message);  // eavesdroppers
    history_.push_back(message);
    return history_.back();
  }

  [[nodiscard]] bool member_has_group_key(std::uint64_t id) const {
    const auto& ring = rings_.at(id);
    return ring.holds(tree_.root_id(), tree_.root_key().version);
  }

  [[nodiscard]] bool evicted_has_group_key(std::uint64_t id) const {
    const auto& ring = evicted_.at(id);
    return ring.holds(tree_.root_id(), tree_.root_key().version);
  }

  KeyTree& tree() { return tree_; }
  [[nodiscard]] const std::vector<RekeyMessage>& history() const { return history_; }

 private:
  KeyTree tree_;
  std::map<std::uint64_t, KeyRing> rings_;
  std::map<std::uint64_t, KeyRing> evicted_;
  std::vector<RekeyMessage> history_;
  std::uint64_t epoch_ = 0;
};

// ----------------------------------------------------------- structure ----

TEST(KeyTree, StartsEmpty) {
  KeyTree tree(4, Rng(1));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.dirty());
}

TEST(KeyTree, InsertGrantsDistinctKeys) {
  KeyTree tree(3, Rng(2));
  const auto g1 = tree.insert(make_member_id(1));
  const auto g2 = tree.insert(make_member_id(2));
  EXPECT_NE(g1.individual_key, g2.individual_key);
  EXPECT_NE(g1.leaf_id, g2.leaf_id);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.dirty());
}

TEST(KeyTree, RejectsDuplicateJoin) {
  KeyTree tree(3, Rng(3));
  tree.insert(make_member_id(1));
  EXPECT_THROW(tree.insert(make_member_id(1)), ContractViolation);
}

TEST(KeyTree, RejectsUnknownLeave) {
  KeyTree tree(3, Rng(4));
  EXPECT_THROW(tree.remove(make_member_id(77)), ContractViolation);
}

TEST(KeyTree, HeightStaysLogarithmic) {
  KeyTree tree(4, Rng(5));
  for (std::uint64_t i = 0; i < 1024; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  const auto stats = tree.stats();
  EXPECT_EQ(stats.member_count, 1024u);
  // ceil(log4 1024) = 5; allow one extra level of slack for greedy insert.
  EXPECT_LE(stats.height, 6u);
}

TEST(KeyTree, StatsMergeAggregatesAcrossTrees) {
  // Multi-tree policies (qt/tt/pt partitions, loss bins) fold per-tree
  // stats with merge(); counts sum, height maxes, mean depth re-weights.
  TreeStats a;
  a.member_count = 100;
  a.height = 3;
  a.node_count = 40;
  a.mean_leaf_depth = 3.0;
  a.leaf_depth_histogram = {0, 0, 20, 80};
  TreeStats b;
  b.member_count = 300;
  b.height = 5;
  b.node_count = 110;
  b.mean_leaf_depth = 5.0;
  b.leaf_depth_histogram = {0, 0, 0, 0, 60, 240};
  a.merge(b);
  EXPECT_EQ(a.member_count, 400u);
  EXPECT_EQ(a.height, 5u);
  EXPECT_EQ(a.node_count, 150u);
  EXPECT_DOUBLE_EQ(a.mean_leaf_depth, (3.0 * 100 + 5.0 * 300) / 400.0);
  const std::vector<std::size_t> want = {0, 0, 20, 80, 60, 240};
  EXPECT_EQ(a.leaf_depth_histogram, want);

  // Merging into an empty accumulator copies the other side verbatim.
  TreeStats empty;
  empty.merge(b);
  EXPECT_EQ(empty.member_count, b.member_count);
  EXPECT_DOUBLE_EQ(empty.mean_leaf_depth, b.mean_leaf_depth);
}

TEST(KeyTree, HeightShrinksAfterMassDeparture) {
  KeyTree tree(4, Rng(6));
  for (std::uint64_t i = 0; i < 256; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  for (std::uint64_t i = 0; i < 240; ++i) tree.remove(make_member_id(i));
  (void)tree.commit(1);
  EXPECT_EQ(tree.size(), 16u);
  EXPECT_LE(tree.stats().height, 4u);
}

TEST(KeyTree, PathIdsEndAtRoot) {
  KeyTree tree(2, Rng(7));
  for (std::uint64_t i = 0; i < 8; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  const auto path = tree.path_ids(make_member_id(3));
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), tree.root_id());
}

TEST(KeyTree, MembersEnumerationMatches) {
  KeyTree tree(3, Rng(8));
  for (std::uint64_t i = 10; i < 20; ++i) tree.insert(make_member_id(i));
  auto members = tree.members();
  EXPECT_EQ(members.size(), 10u);
  for (std::uint64_t i = 10; i < 20; ++i) EXPECT_TRUE(tree.contains(make_member_id(i)));
}

// ------------------------------------------------- paper's Fig.1 costs ----

// Section 2.1's example: 9 members, degree 3, fully balanced. A join that
// splits a leaf into a 2-member subtree costs 4 encrypted keys (K1-9 under
// K1-8, K789 under K78, and both under K9); our insert at a free slot in a
// full-but-shallow node can be cheaper, so we drive the exact shape below.
TEST(KeyTree, SingleJoinCostMatchesPaperExample) {
  KeyTree tree(3, Rng(9));
  // Build the 8-member tree first (as in the paper, U9 joins an 8-member
  // group arranged 3+3+2).
  for (std::uint64_t i = 1; i <= 8; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);

  tree.insert(make_member_id(9));
  const auto message = tree.commit(1);
  // Dirty path: root (K1-9) and one interior (K789). Each emits "new under
  // old" + chain wraps for U9: 2 per node = 4 total.
  EXPECT_EQ(message.cost(), 4u);
}

TEST(KeyTree, SingleLeaveCostMatchesPaperExample) {
  KeyTree tree(3, Rng(10));
  for (std::uint64_t i = 1; i <= 9; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  ASSERT_EQ(tree.stats().height, 2u);  // balanced 3x3

  tree.remove(make_member_id(4));
  const auto message = tree.commit(1);
  // Paper: K'456 under K5 and K6 (2), K'1-9 under K123, K'456, K789 (3).
  EXPECT_EQ(message.cost(), 5u);
}

TEST(KeyTree, BatchedDeparturesShareOverlappingPaths) {
  // Section 2.1.1: when two members of the same subtree leave in one
  // period, the shared path keys change only once. Insertion order 1..9 at
  // degree 3 yields subtrees {1,4,7}, {2,5,8}, {3,6,9}; removing 4 and 7
  // leaves {1}, which splices into the root, so the batch costs 3 wraps —
  // cheaper even than the paper's 4 (which keeps the degenerate interior
  // node), and far below two sequential leaves (5 + 5).
  KeyTree tree(3, Rng(11));
  for (std::uint64_t i = 1; i <= 9; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);

  tree.remove(make_member_id(4));
  tree.remove(make_member_id(7));
  const auto message = tree.commit(1);
  EXPECT_EQ(message.cost(), 3u);
}

// -------------------------------------- message organizations [WGL98] ----

TEST(KeyTree, OrganizationEstimateMatchesCommittedGroupCost) {
  KeyTree tree(4, Rng(77));
  for (std::uint64_t i = 0; i < 64; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  for (std::uint64_t i = 0; i < 8; ++i) tree.remove(make_member_id(i * 7));
  for (std::uint64_t i = 100; i < 105; ++i) tree.insert(make_member_id(i));

  const auto estimate = tree.estimate_message_organizations();
  const auto message = tree.commit(1);
  EXPECT_EQ(estimate.group_oriented_encryptions, message.cost());
  EXPECT_GE(estimate.key_oriented_messages, 1u);
}

TEST(KeyTree, UserOrientedCostsFarMoreForTheServer) {
  // The [WGL98] result the paper leans on: group-oriented rekeying scales
  // as d*logd(N) encryptions per departure, user-oriented as N-ish (every
  // member under an updated key needs its own copy).
  KeyTree tree(4, Rng(78));
  for (std::uint64_t i = 0; i < 256; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  tree.remove(make_member_id(17));
  const auto estimate = tree.estimate_message_organizations();
  EXPECT_GT(estimate.user_oriented_encryptions,
            5 * estimate.group_oriented_encryptions);
  // The root alone contributes every remaining member once.
  EXPECT_GE(estimate.user_oriented_encryptions, 255u);
  (void)tree.commit(1);
}

TEST(KeyTree, CleanTreeEstimatesZero) {
  KeyTree tree(3, Rng(79));
  for (std::uint64_t i = 0; i < 9; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  const auto estimate = tree.estimate_message_organizations();
  EXPECT_EQ(estimate.group_oriented_encryptions, 0u);
  EXPECT_EQ(estimate.key_oriented_messages, 0u);
  EXPECT_EQ(estimate.user_oriented_encryptions, 0u);
}

// --------------------------------------------------------- delivery ----

TEST(KeyTree, AllMembersRecoverGroupKeyAfterJoins) {
  Group group(3);
  for (std::uint64_t i = 0; i < 30; ++i) group.stage_join(i);
  group.commit();
  for (std::uint64_t i = 0; i < 30; ++i)
    EXPECT_TRUE(group.member_has_group_key(i)) << "member " << i;
}

TEST(KeyTree, IncrementalJoinsKeepEveryoneCurrent) {
  Group group(2);
  for (std::uint64_t i = 0; i < 12; ++i) {
    group.stage_join(i);
    group.commit();
    for (std::uint64_t j = 0; j <= i; ++j)
      EXPECT_TRUE(group.member_has_group_key(j)) << "member " << j << " at step " << i;
  }
}

TEST(KeyTree, DepartedMemberCannotFollowRekeys) {
  Group group(3);
  for (std::uint64_t i = 0; i < 9; ++i) group.stage_join(i);
  group.commit();

  group.stage_leave(4);
  group.commit();  // evicted ring still processes the broadcast

  EXPECT_FALSE(group.evicted_has_group_key(4));
  for (std::uint64_t i : {0u, 1u, 2u, 3u, 5u, 6u, 7u, 8u})
    EXPECT_TRUE(group.member_has_group_key(i)) << "member " << i;
}

TEST(KeyTree, NewMemberCannotReadPastGroupKeys) {
  Group group(3);
  for (std::uint64_t i = 0; i < 9; ++i) group.stage_join(i);
  group.commit();
  const auto old_version = group.tree().root_key().version;
  const auto old_key = group.tree().root_key().key;

  group.stage_join(100);
  group.commit();

  // The newcomer holds the current version but must not hold the previous
  // group key (backward confidentiality).
  EXPECT_TRUE(group.member_has_group_key(100));
  // Reconstruct what the newcomer could know: replay history into a fresh
  // ring for member 100 only.
  // Its ring can never contain the old version, because version numbers
  // only move forward and the old wrap chain requires the old KEKs.
  EXPECT_GT(group.tree().root_key().version, old_version);
  EXPECT_NE(group.tree().root_key().key, old_key);
}

TEST(KeyTree, ChurnKeepsInvariantsUnderRandomBatches) {
  Group group(4, 555);
  Rng rng(777);
  std::vector<std::uint64_t> present;
  std::uint64_t next_id = 0;

  for (int epoch = 0; epoch < 20; ++epoch) {
    const std::uint64_t joins = 1 + rng.uniform_u64(8);
    for (std::uint64_t j = 0; j < joins; ++j) {
      group.stage_join(next_id);
      present.push_back(next_id++);
    }
    std::uint64_t leaves = rng.uniform_u64(std::min<std::uint64_t>(present.size(), 6));
    for (std::uint64_t l = 0; l < leaves; ++l) {
      const auto victim = rng.uniform_u64(present.size());
      group.stage_leave(present[victim]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    group.commit();
    for (const auto id : present)
      ASSERT_TRUE(group.member_has_group_key(id)) << "member " << id << " epoch " << epoch;
  }
}

TEST(KeyTree, WrapsDecryptableOutOfOrder) {
  KeyTree tree(2, Rng(12));
  std::map<std::uint64_t, KeyRing> rings;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto grant = tree.insert(make_member_id(i));
    rings.emplace(i, KeyRing(make_member_id(i), grant.leaf_id, grant.individual_key));
  }
  auto message = tree.commit(0);
  // Reverse the wrap order: chains must still resolve via fixed point.
  std::reverse(message.wraps.begin(), message.wraps.end());
  for (auto& [id, ring] : rings) {
    ring.process(message);
    EXPECT_TRUE(ring.holds(tree.root_id(), tree.root_key().version)) << "member " << id;
  }
}

// ------------------------------------------------------------ KeyQueue ----

TEST(KeyQueue, InsertRemoveLifecycle) {
  KeyQueue queue(Rng(13));
  const auto g = queue.insert(make_member_id(1));
  EXPECT_TRUE(queue.contains(make_member_id(1)));
  EXPECT_EQ(queue.individual_key(make_member_id(1)), g.individual_key);
  queue.remove(make_member_id(1));
  EXPECT_FALSE(queue.contains(make_member_id(1)));
  EXPECT_THROW(queue.remove(make_member_id(1)), ContractViolation);
}

TEST(KeyQueue, WrapForAllCostsQueueSize) {
  KeyQueue queue(Rng(14));
  for (std::uint64_t i = 0; i < 25; ++i) queue.insert(make_member_id(i));
  Rng rng(15);
  const auto payload = crypto::Key128::random(rng);
  const auto wraps = queue.wrap_for_all(payload, crypto::make_key_id(999), 7);
  EXPECT_EQ(wraps.size(), 25u);
}

TEST(KeyQueue, EveryResidentCanUnwrap) {
  KeyQueue queue(Rng(16));
  std::map<std::uint64_t, KeyRing> rings;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto g = queue.insert(make_member_id(i));
    rings.emplace(i, KeyRing(make_member_id(i), g.leaf_id, g.individual_key));
  }
  Rng rng(17);
  const auto payload = crypto::Key128::random(rng);
  const auto group_key_id = crypto::make_key_id(4242);
  const auto wraps = queue.wrap_for_all(payload, group_key_id, 3);
  for (auto& [id, ring] : rings) {
    ring.process(std::span<const crypto::WrappedKey>(wraps));
    const auto got = ring.lookup(group_key_id);
    ASSERT_TRUE(got.has_value()) << "member " << id;
    EXPECT_EQ(got->key, payload);
    EXPECT_EQ(got->version, 3u);
  }
}

}  // namespace
}  // namespace gk::lkh
