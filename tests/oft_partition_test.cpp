#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "oft/oft_member.h"
#include "partition/oft_tt_server.h"

namespace gk::partition {
namespace {

using workload::make_member_id;
using workload::MemberProfile;

MemberProfile profile_of(std::uint64_t id) {
  MemberProfile p;
  p.id = make_member_id(id);
  return p;
}

/// Member state for the OFT-backed TT scheme: the OFT fold plus the DEK
/// learned from wraps under the partition root (or the previous DEK).
struct OftTtMember {
  oft::OftMember fold;
  std::optional<crypto::VersionedKey> dek;

  OftTtMember(workload::MemberId id, const oft::OftTree::JoinGrant& grant,
              oft::OftTree::PathInfo info)
      : fold(id, grant, std::move(info)) {}

  void consume(const lkh::RekeyMessage& message, crypto::KeyId dek_id,
               crypto::KeyId tree_root_id) {
    fold.process(message.wraps);
    // Two passes: the tree fold may only complete after blinded updates.
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& wrap : message.wraps) {
        if (wrap.target_id != dek_id) continue;
        if (dek.has_value() && dek->version >= wrap.target_version) continue;
        if (wrap.wrapping_id == dek_id && dek.has_value()) {
          if (const auto fresh = crypto::unwrap_key(dek->key, wrap))
            dek = {*fresh, wrap.target_version};
        } else if (wrap.wrapping_id == tree_root_id) {
          const auto root = fold.compute_group_key();
          if (!root.has_value()) continue;
          if (const auto fresh = crypto::unwrap_key(*root, wrap))
            dek = {*fresh, wrap.target_version};
        }
      }
      fold.process(message.wraps);
    }
  }
};

class Harness {
 public:
  explicit Harness(unsigned k, std::uint64_t seed = 314)
      : server_(k, Rng(seed)) {
    // OFT is per-operation: members consume each operation's multicast as
    // it happens, refreshing their (public) path topology around it — the
    // discipline a real deployment follows via message headers.
    server_.set_op_observer([this](const OftTtServer::OpEvent& event) {
      using Kind = OftTtServer::OpEvent::Kind;
      if (event.kind == Kind::kMigrateIn) {
        // Re-key the migrant in the L-tree (unicast grant), keeping its DEK.
        const auto id = workload::raw(event.subject);
        const auto it = members_.find(id);
        if (it != members_.end()) {
          const auto dek_backup = it->second.dek;
          members_.erase(it);
          OftTtMember fresh(event.subject,
                            server_.l_tree().current_grant(event.subject),
                            server_.l_tree().path_info(event.subject));
          fresh.dek = dek_backup;
          members_.emplace(id, std::move(fresh));
        }
      }
      const std::uint64_t skip =
          event.kind == Kind::kGroupKey ? ~0ULL : workload::raw(event.subject);
      for (auto& [id, member] : members_) {
        if (id == skip && event.kind != Kind::kMigrateIn) continue;
        const auto member_id = make_member_id(id);
        const auto& tree = server_.member_in_s(member_id) ? server_.s_tree()
                                                          : server_.l_tree();
        if (event.kind == Kind::kGroupKey) {
          member.consume(event.message, server_.group_key_id(), tree.root_id());
        } else {
          member.fold.process(event.message.wraps);
          member.fold.set_structure(tree.path_info(member_id));
          member.fold.process(event.message.wraps);
        }
      }
    });
  }

  void join(std::uint64_t id) {
    const auto reg = server_.join(profile_of(id));
    (void)reg;
    const auto member = make_member_id(id);
    const auto& tree =
        server_.member_in_s(member) ? server_.s_tree() : server_.l_tree();
    members_.emplace(
        id, OftTtMember(member, tree.current_grant(member), tree.path_info(member)));
  }

  void leave(std::uint64_t id) {
    members_.erase(id);  // the leaver stops following before its own eviction
    server_.leave(make_member_id(id));
  }

  EpochOutput end_epoch() { return server_.end_epoch(); }

  [[nodiscard]] bool in_sync(std::uint64_t id) const {
    const auto& member = members_.at(id);
    return member.dek.has_value() && member.dek->key == server_.group_key().key;
  }

  OftTtServer& server() { return server_; }

 private:
  OftTtServer server_;
  std::map<std::uint64_t, Registration> pending_grants_;
  std::map<std::uint64_t, OftTtMember> members_;
};

TEST(OftTtServer, ArrivalsLearnDek) {
  Harness h(3);
  for (std::uint64_t i = 0; i < 12; ++i) h.join(i);
  h.end_epoch();
  for (std::uint64_t i = 0; i < 12; ++i) EXPECT_TRUE(h.in_sync(i)) << "member " << i;
}

TEST(OftTtServer, SurvivorsRecoverAfterDeparture) {
  Harness h(3);
  for (std::uint64_t i = 0; i < 10; ++i) h.join(i);
  h.end_epoch();
  h.leave(4);
  h.end_epoch();
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (i == 4) continue;
    EXPECT_TRUE(h.in_sync(i)) << "member " << i;
  }
}

TEST(OftTtServer, MigrationsMoveEveryoneAndKeepSync) {
  Harness h(2);
  for (std::uint64_t i = 0; i < 8; ++i) h.join(i);
  h.end_epoch();                       // epoch 0
  h.end_epoch();                       // epoch 1 (too young)
  const auto out = h.end_epoch();      // epoch 2: all migrate
  EXPECT_EQ(out.migrations, 8u);
  EXPECT_EQ(h.server().s_partition_size(), 0u);
  EXPECT_EQ(h.server().l_partition_size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(h.in_sync(i)) << "member " << i;
}

TEST(OftTtServer, ShortLivedMembersNeverTouchTheLTree) {
  Harness h(5);
  for (std::uint64_t i = 0; i < 6; ++i) h.join(i);
  h.end_epoch();
  h.leave(2);  // departs before the S-period elapses
  const auto out = h.end_epoch();
  EXPECT_EQ(out.s_departures, 1u);
  EXPECT_EQ(out.l_departures, 0u);
  EXPECT_EQ(h.server().l_partition_size(), 0u);
}

TEST(OftTtServer, SteadyChurnStaysConsistent) {
  Harness h(2, 2718);
  Rng rng(161803);
  std::vector<std::uint64_t> present;
  std::uint64_t next = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto joins = 1 + rng.uniform_u64(4);
    for (std::uint64_t j = 0; j < joins; ++j) {
      h.join(next);
      present.push_back(next++);
    }
    const auto leaves = rng.uniform_u64(std::min<std::uint64_t>(present.size(), 3));
    for (std::uint64_t l = 0; l < leaves; ++l) {
      const auto idx = rng.uniform_u64(present.size());
      h.leave(present[idx]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    h.end_epoch();
    for (const auto id : present)
      ASSERT_TRUE(h.in_sync(id)) << "member " << id << " epoch " << epoch;
  }
}

TEST(OftTtServer, DepartureCostScalesWithSmallPartition) {
  // The partition payoff on the OFT substrate: a short-lived member's
  // departure disturbs only the (small) S-tree, so its rekey message is
  // sized by log2(|S|), not log2(N).
  Harness big(10, 11);
  for (std::uint64_t i = 0; i < 200; ++i) big.join(i);
  big.end_epoch();
  // All 200 members now sit in the S-tree; arrivals in a later epoch keep
  // it populated while incumbents migrate.
  for (std::uint64_t e = 0; e < 3; ++e) {
    for (std::uint64_t i = 0; i < 5; ++i) big.join(1000 + e * 5 + i);
    big.end_epoch();
  }
  // S-tree now holds only the recent arrivals (15), L-tree none (K=10 not
  // reached yet). A departure of a fresh member costs ~log2(215) wraps in
  // the worst case but log2(|S|) when the trees are separate.
  big.leave(1000);
  const auto out = big.end_epoch();
  // log2(215) ~ 7.75; partitioned cost should be well under d*log of the
  // whole group — generous bound to avoid flakiness:
  EXPECT_LE(out.message.cost(), 16u);
}

}  // namespace
}  // namespace gk::partition
