#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "elk/elk_member.h"
#include "partition/elk_tt_server.h"

namespace gk::partition {
namespace {

using workload::make_member_id;

/// ELK-TT member: the ELK fold plus the DEK taken from whole-key wraps
/// under the (post-refresh) partition root.
struct Follower {
  elk::ElkMember keys;
  std::optional<crypto::VersionedKey> dek;

  explicit Follower(workload::MemberId id, std::vector<elk::ElkTree::PathKey> grant)
      : keys(id, std::move(grant)) {}

  void consume(const ElkTtServer::Output& out, crypto::KeyId dek_id,
               crypto::KeyId root_id) {
    keys.process(out.contributions);  // pre-refresh key material
    keys.apply_refresh();             // interval boundary
    for (const auto& wrap : out.dek_wraps.wraps) {
      if (wrap.target_id != dek_id) continue;
      if (dek.has_value() && dek->version >= wrap.target_version) continue;
      if (wrap.wrapping_id == dek_id && dek.has_value()) {
        if (const auto fresh = crypto::unwrap_key(dek->key, wrap))
          dek = {*fresh, wrap.target_version};
      } else if (wrap.wrapping_id == root_id) {
        const auto root = keys.lookup(root_id);
        if (!root.has_value()) continue;
        if (const auto fresh = crypto::unwrap_key(root->key, wrap))
          dek = {*fresh, wrap.target_version};
      }
    }
  }
};

class Harness {
 public:
  explicit Harness(unsigned k, std::uint64_t seed = 1453) : server_(k, Rng(seed)) {}

  void join(std::uint64_t id) {
    server_.join(make_member_id(id));
    pending_.push_back(id);
  }

  void leave(std::uint64_t id) {
    members_.erase(id);
    server_.leave(make_member_id(id));
  }

  ElkTtServer::Output end_epoch() {
    auto out = server_.end_epoch();
    for (auto& [id, member] : members_)
      member.consume(out, server_.group_key_id(),
                     server_.tree_of(make_member_id(id)).root_id());
    for (const auto id : pending_)
      if (server_.size() > 0 && contains(id))
        members_.emplace(id, Follower(make_member_id(id),
                                      server_.grant_for(make_member_id(id))));
    pending_.clear();
    for (const auto member : server_.regrants()) {
      const auto it = members_.find(workload::raw(member));
      if (it != members_.end()) it->second.keys.re_grant(server_.grant_for(member));
    }
    // Re-granted members and fresh arrivals pick the DEK off this epoch's
    // wraps with their post-refresh roots.
    for (auto& [id, member] : members_) {
      if (member.dek.has_value() &&
          member.dek->key == server_.group_key().key)
        continue;
      ElkTtServer::Output dek_only;
      dek_only.dek_wraps = out.dek_wraps;
      // consume() would re-apply the refresh; unwrap directly instead.
      for (const auto& wrap : out.dek_wraps.wraps) {
        if (wrap.target_id != server_.group_key_id()) continue;
        const auto root_id = server_.tree_of(make_member_id(id)).root_id();
        if (wrap.wrapping_id != root_id) continue;
        const auto root = member.keys.lookup(root_id);
        if (!root.has_value()) continue;
        if (const auto fresh = crypto::unwrap_key(root->key, wrap))
          member.dek = {*fresh, wrap.target_version};
      }
    }
    return out;
  }

  [[nodiscard]] bool contains(std::uint64_t id) const {
    try {
      (void)server_.member_in_s(make_member_id(id));
      return true;
    } catch (...) {
      return false;
    }
  }

  [[nodiscard]] bool in_sync(std::uint64_t id) const {
    const auto& member = members_.at(id);
    return member.dek.has_value() && member.dek->key == server_.group_key().key;
  }

  ElkTtServer& server() { return server_; }

 private:
  ElkTtServer server_;
  std::map<std::uint64_t, Follower> members_;
  std::vector<std::uint64_t> pending_;
};

TEST(ElkTtServer, ArrivalsLearnDek) {
  Harness h(3);
  for (std::uint64_t i = 0; i < 12; ++i) h.join(i);
  h.end_epoch();
  for (std::uint64_t i = 0; i < 12; ++i) EXPECT_TRUE(h.in_sync(i)) << "member " << i;
}

TEST(ElkTtServer, JoinsCostZeroContributionBits) {
  Harness h(3);
  for (std::uint64_t i = 0; i < 20; ++i) h.join(i);
  const auto out = h.end_epoch();
  EXPECT_EQ(out.contributions.payload_bits(), 0u);
  EXPECT_GT(out.dek_wraps.cost(), 0u);  // only the DEK travels as a key
}

TEST(ElkTtServer, SurvivorsFollowDepartures) {
  Harness h(3);
  for (std::uint64_t i = 0; i < 16; ++i) h.join(i);
  h.end_epoch();
  h.leave(5);
  h.leave(9);
  const auto out = h.end_epoch();
  EXPECT_GT(out.contributions.payload_bits(), 0u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (i == 5 || i == 9) continue;
    EXPECT_TRUE(h.in_sync(i)) << "member " << i;
  }
}

TEST(ElkTtServer, MigrationsKeepEveryoneCurrent) {
  Harness h(2);
  for (std::uint64_t i = 0; i < 10; ++i) h.join(i);
  h.end_epoch();
  h.end_epoch();
  const auto out = h.end_epoch();  // joined at epoch 0 -> migrate at 2
  EXPECT_EQ(out.migrations, 10u);
  EXPECT_EQ(h.server().s_partition_size(), 0u);
  EXPECT_EQ(h.server().l_partition_size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_TRUE(h.in_sync(i)) << "member " << i;
}

TEST(ElkTtServer, ShortLivedChurnOnlyTouchesTheSmallTree) {
  Harness h(10);
  for (std::uint64_t i = 0; i < 200; ++i) h.join(i);
  h.end_epoch();
  // A handful of fresh arrivals...
  for (std::uint64_t i = 1000; i < 1010; ++i) h.join(i);
  h.end_epoch();
  // ...one departs before its S-period elapses: contribution records are
  // sized by the S-tree (~log2 210), never by an L-tree of thousands.
  h.leave(1005);
  const auto out = h.end_epoch();
  EXPECT_EQ(out.s_departures, 1u);
  EXPECT_EQ(out.l_departures, 0u);
  EXPECT_LE(out.contributions.payload_bits(), 2u * 16u * 12u);
}

TEST(ElkTtServer, ChurnStaysConsistent) {
  Harness h(2, 9091);
  Rng rng(1021);
  std::vector<std::uint64_t> present;
  std::uint64_t next = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    const auto joins = 1 + rng.uniform_u64(4);
    for (std::uint64_t j = 0; j < joins; ++j) {
      h.join(next);
      present.push_back(next++);
    }
    h.end_epoch();
    const auto leaves = rng.uniform_u64(std::min<std::uint64_t>(present.size(), 3));
    for (std::uint64_t l = 0; l < leaves; ++l) {
      const auto idx = rng.uniform_u64(present.size());
      h.leave(present[idx]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    h.end_epoch();
    for (const auto id : present)
      ASSERT_TRUE(h.in_sync(id)) << "member " << id << " epoch " << epoch;
  }
}

}  // namespace
}  // namespace gk::partition
