// Rekey-engine tests: the arena-backed KeyTree's deterministic parallel
// wrap emission, the counter-based nonce derivation, the batched keywrap
// kernel, and the thread pool they run on.
//
// The load-bearing property: a commit's rekey message is byte-identical
// whether wraps are emitted sequentially or fanned across a pool — every
// wrap's bytes are a pure function of (epoch, node id, wrap index) and key
// material fixed before emission starts. Crash recovery leans on the same
// fact: a journal replay regenerates the interrupted epoch bit for bit.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/keywrap.h"
#include "lkh/key_tree.h"
#include "partition/factory.h"
#include "partition/journaled_server.h"
#include "partition/one_keytree_server.h"
#include "partition/qt_server.h"
#include "partition/server.h"
#include "partition/tt_server.h"

namespace {

using namespace gk;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  // relaxed: parallel_for's join is the synchronization point; the counters
  // are only read after it returns.
  pool.parallel_for(kN, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  // relaxed: reading after the parallel_for barrier.
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  common::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SizeOnePoolRunsOnCallingThread) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t covered = 0;
  pool.parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
    covered += end - begin;  // single lane: no synchronization needed
  });
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  common::ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> covered{0};
    // relaxed: parallel_for blocks until every chunk ran; the read is after.
    pool.parallel_for(257, 16, [&](std::size_t begin, std::size_t end) {
      covered.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(covered.load(std::memory_order_relaxed), 257u) << "round " << round;
  }
}

// ------------------------------------------------------------ nonce and KEKs

TEST(WrapNonce, DerivationIsDeterministic) {
  const auto a = crypto::derive_wrap_nonce(7, crypto::make_key_id(42), 3);
  const auto b = crypto::derive_wrap_nonce(7, crypto::make_key_id(42), 3);
  EXPECT_EQ(a, b);
}

TEST(WrapNonce, DistinctAcrossEpochDestAndIndex) {
  std::set<crypto::WrapNonce> seen;
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch)
    for (std::uint64_t dest = 0; dest < 8; ++dest)
      for (std::uint32_t index = 0; index < 8; ++index)
        seen.insert(crypto::derive_wrap_nonce(epoch, crypto::make_key_id(dest), index));
  EXPECT_EQ(seen.size(), 8u * 8u * 8u);
}

TEST(PreparedKek, MatchesOneShotWrapAndUnwrap) {
  Rng rng(11);
  const auto kek = crypto::Key128::random(rng);
  const auto payload = crypto::Key128::random(rng);
  const auto nonce = crypto::derive_wrap_nonce(1, crypto::make_key_id(5), 0);

  const auto one_shot = crypto::wrap_key(kek, crypto::make_key_id(9), 2, payload,
                                         crypto::make_key_id(5), 3, nonce);
  const crypto::PreparedKek prepared(kek);
  const auto via_prepared =
      prepared.wrap(crypto::make_key_id(9), 2, payload, crypto::make_key_id(5), 3, nonce);

  EXPECT_EQ(one_shot.nonce, via_prepared.nonce);
  EXPECT_EQ(one_shot.ciphertext, via_prepared.ciphertext);
  EXPECT_EQ(one_shot.tag, via_prepared.tag);

  const auto unwrapped = prepared.unwrap(one_shot);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(*unwrapped, payload);
  EXPECT_EQ(*crypto::unwrap_key(kek, via_prepared), payload);

  const auto wrong = crypto::Key128::random(rng);
  EXPECT_FALSE(crypto::PreparedKek(wrong).unwrap(one_shot).has_value());
}

TEST(WrapBatch, MatchesPerItemWraps) {
  Rng rng(12);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrapRequest> requests(37);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].payload = crypto::Key128::random(rng);
    requests[i].target_id = crypto::make_key_id(100 + i);
    requests[i].target_version = static_cast<std::uint32_t>(i);
    requests[i].nonce = crypto::derive_wrap_nonce(3, requests[i].target_id, 0);
  }

  const auto batched =
      crypto::wrap_keys_batch(kek, crypto::make_key_id(1), 7,
                              std::span<const crypto::WrapRequest>(requests));
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto single =
        crypto::wrap_key(kek, crypto::make_key_id(1), 7, requests[i].payload,
                         requests[i].target_id, requests[i].target_version,
                         requests[i].nonce);
    EXPECT_EQ(batched[i].nonce, single.nonce) << i;
    EXPECT_EQ(batched[i].ciphertext, single.ciphertext) << i;
    EXPECT_EQ(batched[i].tag, single.tag) << i;
    EXPECT_EQ(*crypto::unwrap_key(kek, batched[i]), requests[i].payload) << i;
  }
}

// ---------------------------------------------- parallel commit determinism

void expect_identical(const lkh::RekeyMessage& a, const lkh::RekeyMessage& b,
                      std::uint64_t epoch) {
  ASSERT_EQ(a.epoch, b.epoch) << "epoch " << epoch;
  ASSERT_EQ(a.group_key_id, b.group_key_id) << "epoch " << epoch;
  ASSERT_EQ(a.group_key_version, b.group_key_version) << "epoch " << epoch;
  ASSERT_EQ(a.wraps.size(), b.wraps.size()) << "epoch " << epoch;
  for (std::size_t w = 0; w < a.wraps.size(); ++w) {
    ASSERT_EQ(a.wraps[w].target_id, b.wraps[w].target_id) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].target_version, b.wraps[w].target_version) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].wrapping_id, b.wraps[w].wrapping_id) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].wrapping_version, b.wraps[w].wrapping_version)
        << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].nonce, b.wraps[w].nonce) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].ciphertext, b.wraps[w].ciphertext) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].tag, b.wraps[w].tag) << epoch << ":" << w;
  }
}

TEST(ParallelCommit, KeyTreeOutputIsByteIdenticalToSequential) {
  // Large dirty batches (thousands of wraps, well past the parallel
  // threshold) on identical twin trees: one sequential, one fanned across a
  // pool. Every commit must match byte for byte.
  common::ThreadPool pool(4);
  lkh::KeyTree sequential(4, Rng(77));
  lkh::KeyTree parallel(4, Rng(77));
  parallel.set_executor(&pool);

  sequential.reserve(4096);
  parallel.reserve(4096);
  for (std::uint64_t m = 0; m < 4096; ++m) {
    (void)sequential.insert(workload::make_member_id(m));
    (void)parallel.insert(workload::make_member_id(m));
  }
  expect_identical(sequential.commit(0), parallel.commit(0), 0);

  Rng churn(123);
  std::vector<std::uint64_t> present(4096);
  for (std::uint64_t m = 0; m < 4096; ++m) present[m] = m;
  std::uint64_t next = 4096;
  for (std::uint64_t epoch = 1; epoch <= 12; ++epoch) {
    for (int b = 0; b < 256; ++b) {
      const auto victim = churn.uniform_u64(present.size());
      sequential.remove(workload::make_member_id(present[victim]));
      parallel.remove(workload::make_member_id(present[victim]));
      (void)sequential.insert(workload::make_member_id(next));
      (void)parallel.insert(workload::make_member_id(next));
      present[victim] = next++;
    }
    expect_identical(sequential.commit(epoch), parallel.commit(epoch), epoch);
  }
}

workload::MemberProfile profile_of(std::uint64_t id, Rng& rng) {
  workload::MemberProfile profile;
  profile.id = workload::make_member_id(id);
  profile.member_class = rng.bernoulli(0.6) ? workload::MemberClass::kShort
                                            : workload::MemberClass::kLong;
  profile.duration = profile.member_class == workload::MemberClass::kShort ? 30.0 : 900.0;
  return profile;
}

TEST(ParallelCommit, AllSchemesByteIdenticalAcrossRandomizedSchedules) {
  // The ISSUE's property: for every scheme, a randomized join/leave schedule
  // (migrations included — the S-period fires many times in 100+ epochs)
  // produces byte-identical rekey messages with and without the executor.
  const partition::SchemeKind kinds[] = {
      partition::SchemeKind::kOneKeyTree, partition::SchemeKind::kQt,
      partition::SchemeKind::kTt, partition::SchemeKind::kPt};
  common::ThreadPool pool(4);

  for (const auto kind : kinds) {
    for (const std::uint64_t seed : {5ULL, 99ULL}) {
      auto sequential = partition::make_server(kind, 3, 4, Rng(seed));
      auto parallel = partition::make_server(kind, 3, 4, Rng(seed));
      parallel->set_executor(&pool);

      Rng schedule(seed ^ 0xfeed);
      std::vector<std::uint64_t> present;
      std::uint64_t next = 0;

      for (std::uint64_t epoch = 0; epoch < 120; ++epoch) {
        // Decide the epoch's operations once, apply to both servers.
        const std::uint64_t joins = schedule.uniform_u64(6);
        for (std::uint64_t j = 0; j < joins; ++j) {
          const auto profile = profile_of(next, schedule);
          const auto reg_a = sequential->join(profile);
          const auto reg_b = parallel->join(profile);
          ASSERT_EQ(reg_a.individual_key, reg_b.individual_key);
          ASSERT_EQ(reg_a.leaf_id, reg_b.leaf_id);
          present.push_back(next++);
        }
        const std::uint64_t leaves =
            present.empty() ? 0
                            : schedule.uniform_u64(
                                  std::min<std::uint64_t>(4, present.size() + 1));
        for (std::uint64_t l = 0; l < leaves; ++l) {
          const auto victim = schedule.uniform_u64(present.size());
          sequential->leave(workload::make_member_id(present[victim]));
          parallel->leave(workload::make_member_id(present[victim]));
          present.erase(present.begin() + static_cast<std::ptrdiff_t>(victim));
        }

        const auto out_a = sequential->end_epoch();
        const auto out_b = parallel->end_epoch();
        ASSERT_EQ(out_a.migrations, out_b.migrations);
        expect_identical(out_a.message, out_b.message, epoch);
        ASSERT_EQ(sequential->group_key().key, parallel->group_key().key);
      }
    }
  }
}

// ----------------------------------------------------------- crash recovery

TEST(CrashRecovery, NonceDerivationKeepsJournalReplayByteIdentical) {
  // The nonce-derivation change must preserve the WAL's core guarantee: a
  // replayed epoch regenerates the interrupted rekey message *byte for
  // byte* — nonces included, which the seed's RNG-drawn nonces only
  // achieved via careful RNG-state capture. Recovery even runs with a
  // parallel executor to show replay determinism is independent of
  // emission scheduling.
  common::ThreadPool pool(3);
  const auto durable_kinds = {partition::SchemeKind::kOneKeyTree,
                              partition::SchemeKind::kQt, partition::SchemeKind::kTt};
  for (const auto kind : durable_kinds) {
    auto make = [kind] {
      auto server = partition::make_server(kind, 3, 4, Rng(1234));
      auto* durable = dynamic_cast<partition::DurableRekeyServer*>(server.release());
      return std::unique_ptr<partition::DurableRekeyServer>(durable);
    };
    partition::JournaledServer::Config config;
    config.checkpoint_every = 3;
    partition::JournaledServer twin(make(), config);
    partition::JournaledServer victim(make(), config);

    Rng rng_a(9);
    Rng rng_b(9);
    std::uint64_t next = 0;
    for (std::uint64_t m = 0; m < 40; ++m) {
      (void)twin.join(profile_of(next, rng_a));
      (void)victim.join(profile_of(next, rng_b));
      ++next;
    }
    for (int epoch = 0; epoch < 6; ++epoch) {
      (void)twin.end_epoch();
      (void)victim.end_epoch();
      twin.leave(workload::make_member_id(static_cast<std::uint64_t>(epoch)));
      victim.leave(workload::make_member_id(static_cast<std::uint64_t>(epoch)));
      (void)twin.join(profile_of(next, rng_a));
      (void)victim.join(profile_of(next, rng_b));
      ++next;
    }

    const auto expected = twin.end_epoch();
    victim.arm_crash_before_commit();
    EXPECT_THROW((void)victim.end_epoch(), partition::ServerCrashed);

    auto recovery =
        partition::JournaledServer::recover(victim.journal_bytes(), make(), config);
    ASSERT_TRUE(recovery.pending.has_value());
    recovery.server->set_executor(&pool);
    expect_identical(recovery.pending->message, expected.message, expected.epoch);

    // Still in lockstep afterwards, executor attached.
    twin.leave(workload::make_member_id(30));
    recovery.server->leave(workload::make_member_id(30));
    const auto after_a = twin.end_epoch();
    const auto after_b = recovery.server->end_epoch();
    expect_identical(after_a.message, after_b.message, after_a.epoch);
  }
}

// ------------------------------------------------------------- tree shape

TEST(TreeStats, DepthHistogramAccountsForEveryLeaf) {
  lkh::KeyTree tree(3, Rng(8));
  tree.reserve(500);
  for (std::uint64_t m = 0; m < 500; ++m) (void)tree.insert(workload::make_member_id(m));
  (void)tree.commit(0);
  for (std::uint64_t m = 0; m < 100; ++m) tree.remove(workload::make_member_id(m * 3));
  (void)tree.commit(1);

  const auto stats = tree.stats();
  EXPECT_EQ(stats.member_count, 400u);
  ASSERT_EQ(stats.leaf_depth_histogram.size(), stats.height + 1);
  std::size_t histogram_total = 0;
  double weighted_depth = 0.0;
  for (std::size_t d = 0; d < stats.leaf_depth_histogram.size(); ++d) {
    histogram_total += stats.leaf_depth_histogram[d];
    weighted_depth += static_cast<double>(d * stats.leaf_depth_histogram[d]);
  }
  EXPECT_EQ(histogram_total, stats.member_count);
  EXPECT_NEAR(weighted_depth / static_cast<double>(stats.member_count),
              stats.mean_leaf_depth, 1e-9);
}

}  // namespace
