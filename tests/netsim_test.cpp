#include <gtest/gtest.h>

#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "netsim/receiver.h"

namespace gk::netsim {
namespace {

using workload::make_member_id;

TEST(Receiver, BernoulliLossConvergesToRate) {
  Receiver receiver(make_member_id(1), 0.12, Rng(1));
  for (int i = 0; i < 300000; ++i) (void)receiver.receives();
  EXPECT_NEAR(receiver.observed_loss(), 0.12, 0.005);
  EXPECT_FALSE(receiver.is_bursty());
  EXPECT_DOUBLE_EQ(receiver.loss_rate(), 0.12);
}

TEST(Receiver, LossFreeNeverDrops) {
  Receiver receiver(make_member_id(2), 0.0, Rng(2));
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(receiver.receives());
}

TEST(Receiver, RejectsInvalidRates) {
  EXPECT_THROW(Receiver(make_member_id(1), 1.0, Rng(3)), ContractViolation);
  EXPECT_THROW(Receiver(make_member_id(1), -0.1, Rng(3)), ContractViolation);
}

TEST(Receiver, BurstyMatchedMeanConverges) {
  auto receiver = Receiver::bursty(make_member_id(3), 0.2, 8.0, Rng(4));
  EXPECT_TRUE(receiver.is_bursty());
  EXPECT_NEAR(receiver.loss_rate(), 0.2, 1e-9);  // stationary by construction
  for (int i = 0; i < 400000; ++i) (void)receiver.receives();
  EXPECT_NEAR(receiver.observed_loss(), 0.2, 0.01);
}

TEST(Receiver, BurstyLossesAreActuallyClustered) {
  // Clustering shows as loss autocorrelation: P[loss | previous loss] far
  // above the marginal loss rate. For Bernoulli the two are equal; for the
  // Gilbert-Elliott channel a loss usually means we are in the Bad state,
  // where the next packet is lost with probability near bad_loss.
  auto conditional_loss = [](Receiver receiver) {
    std::uint64_t losses = 0;
    std::uint64_t loss_after_loss = 0;
    bool previous_lost = false;
    for (int i = 0; i < 400000; ++i) {
      const bool lost = !receiver.receives();
      if (previous_lost) {
        if (lost) ++loss_after_loss;
      }
      if (lost) ++losses;
      previous_lost = lost;
    }
    return losses == 0 ? 0.0
                       : static_cast<double>(loss_after_loss) /
                             static_cast<double>(losses);
  };
  const double bernoulli =
      conditional_loss(Receiver(make_member_id(1), 0.2, Rng(5)));
  const double bursty =
      conditional_loss(Receiver::bursty(make_member_id(2), 0.2, 16.0, Rng(5)));
  EXPECT_NEAR(bernoulli, 0.2, 0.02);  // memoryless: conditional == marginal
  EXPECT_GT(bursty, 0.35);            // clustered: conditional >> marginal
}

TEST(Receiver, BurstyRejectsUnreachableTargets) {
  EXPECT_THROW((void)Receiver::bursty(make_member_id(1), 0.001, 8.0, Rng(6)),
               ContractViolation);
  EXPECT_THROW((void)Receiver::bursty(make_member_id(1), 0.9, 8.0, Rng(6)),
               ContractViolation);
}

TEST(Receiver, DeterministicGivenSeed) {
  auto a = Receiver::bursty(make_member_id(1), 0.1, 8.0, Rng(7));
  auto b = Receiver::bursty(make_member_id(1), 0.1, 8.0, Rng(7));
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.receives(), b.receives());
}

TEST(BurstParams, StationaryLossClosedFormIsTheMarkovChainStationaryMean) {
  // pi_bad = g2b / (g2b + b2g); loss = pi_bad * bad + (1 - pi_bad) * good.
  const BurstParams params{0.01, 0.6, 0.05, 0.20};
  const double pi_bad = 0.05 / 0.25;
  EXPECT_DOUBLE_EQ(params.stationary_loss(), pi_bad * 0.6 + (1.0 - pi_bad) * 0.01);
}

TEST(BurstParams, StationaryLossMatchesEmpiricalGilbertElliottRun) {
  const BurstParams params{0.01, 0.6, 0.05, 0.20};
  Receiver receiver(make_member_id(7), params, Rng(21));
  const int trials = 500000;
  int losses = 0;
  for (int i = 0; i < trials; ++i)
    if (!receiver.receives()) ++losses;
  EXPECT_NEAR(static_cast<double>(losses) / trials, params.stationary_loss(), 0.01);
  EXPECT_NEAR(receiver.observed_loss(), params.stationary_loss(), 0.01);
}

TEST(Receiver, BernoulliDropSequenceDeterministicGivenSeed) {
  Receiver a(make_member_id(1), 0.3, Rng(42));
  Receiver b(make_member_id(1), 0.3, Rng(42));
  for (int i = 0; i < 2000; ++i) ASSERT_EQ(a.receives(), b.receives());
}

TEST(Receiver, DifferentSeedsGiveDifferentDropSequences) {
  Receiver a(make_member_id(1), 0.3, Rng(42));
  Receiver b(make_member_id(1), 0.3, Rng(43));
  int diffs = 0;
  for (int i = 0; i < 2000; ++i)
    if (a.receives() != b.receives()) ++diffs;
  EXPECT_GT(diffs, 0);
}

TEST(ChannelStats, MergeAccumulates) {
  ChannelStats a{10, 8, 2};
  const ChannelStats b{5, 4, 1};
  a.merge(b);
  EXPECT_EQ(a.packets_sent, 15u);
  EXPECT_EQ(a.receptions, 12u);
  EXPECT_EQ(a.losses, 3u);
}

}  // namespace
}  // namespace gk::netsim
