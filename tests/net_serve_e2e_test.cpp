// The PR's acceptance drill, end to end over real sockets: a forked gkd
// daemon serves ten thousand concurrent member sessions over loopback TCP
// (client and server in separate processes, so each stays under the fd
// ceiling), survives 70 rekey epochs — a 20-commit bootstrap ramp plus 50
// churn epochs — and every byte every subscriber receives equals what a twin
// in-process engine (same scheme, shards, and seed) emits for the same
// membership history. The daemon is not a simulation of the engine; it is
// the engine behind a socket, and this test pins that equivalence.
//
// GK_NET_E2E_SESSIONS scales the session count down for sanitizer CI runs
// (the schedule and byte-identity checks are scale-invariant).

#include <sys/wait.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/client.h"
#include "net/spawn.h"
#include "partition/factory.h"
#include "wire/record.h"

namespace gk::net {
namespace {

struct MemberSession {
  std::unique_ptr<Client> client;
  std::uint64_t member = 0;
};

workload::MemberProfile profile_of(std::uint64_t member) {
  workload::MemberProfile profile;
  profile.id = workload::make_member_id(member);
  profile.member_class = workload::MemberClass::kShort;
  return profile;
}

TEST(NetServeE2E, TenThousandSessionsByteIdenticalOver50Epochs) {
  std::size_t target_sessions = 10000;
  if (const char* env = std::getenv("GK_NET_E2E_SESSIONS"))
    target_sessions = std::stoul(env);
  // One fd per session in this process and in the daemon (which inherits
  // the raised limit across fork); degrade rather than die on EMFILE.
  const std::size_t fd_cap = raise_fd_limit();
  if (fd_cap < target_sessions + 1024) {
    target_sessions = fd_cap > 2048 ? fd_cap - 1024 : 1024;
    std::cout << "fd limit " << fd_cap << " caps the drill at "
              << target_sessions << " sessions\n";
  }
  const std::size_t ramp_batches = 20;
  const std::size_t batch = target_sessions / ramp_batches;
  ASSERT_GT(batch, 0u);

  ServerConfig config;
  config.scheme = "tt";
  config.shards = 2;
  config.seed = 42;
  SpawnedServer daemon(config);
  auto twin = partition::make_sharded_server(config.scheme, config.scheme_config,
                                             config.shards, Rng(config.seed));

  Client control;
  control.connect("127.0.0.1", daemon.port());
  (void)control.hello(0xFFFF0001ULL);

  std::vector<MemberSession> sessions;
  sessions.reserve(target_sessions + 128);
  std::uint64_t next_member = 1;

  // Joins are serialized (each ack awaited), so the daemon engine sees
  // exactly the op order the twin replays.
  const auto admit = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      MemberSession session;
      session.member = next_member++;
      session.client = std::make_unique<Client>();
      session.client->connect("127.0.0.1", daemon.port());
      (void)session.client->hello(session.member);
      (void)session.client->join(workload::MemberClass::kShort);
      (void)twin->join(profile_of(session.member));
      sessions.push_back(std::move(session));
    }
  };

  std::size_t epochs_checked = 0;
  const auto commit_and_verify = [&] {
    const auto ack = control.commit();
    const auto twin_out = twin->end_epoch();
    ASSERT_EQ(ack.epoch, twin_out.epoch);
    const auto expected = wire::RekeyRecord::encode(twin_out.message);
    ASSERT_EQ(ack.wraps, twin_out.message.wraps.size());
    // Round-robin nonblocking drain. A serial blocking sweep would park
    // the tail sessions' receive buffers full while the daemon is still
    // fanning out, and loopback TCP answers a full buffer with segment
    // drops and exponential RTO backoff — minutes per epoch. Draining
    // every socket a chunk at a time keeps the windows open.
    std::vector<MemberSession*> pending;
    pending.reserve(sessions.size());
    for (auto& session : sessions)
      if (session.client) pending.push_back(&session);
    std::size_t mismatches = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(5);
    while (!pending.empty()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << pending.size() << " sessions still undrained at epoch " << ack.epoch;
      std::size_t keep = 0;
      for (auto* session : pending) {
        auto frame = session->client->poll_frame();
        if (!frame) {
          pending[keep++] = session;
          continue;
        }
        ASSERT_EQ(frame->type, FrameType::kRekey);
        if (frame->payload != expected) ++mismatches;
      }
      pending.resize(keep);
      if (!pending.empty())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(mismatches, 0u) << "epoch " << ack.epoch;
    ++epochs_checked;
  };

  // Bootstrap ramp: spread the initial tree build across commits.
  for (std::size_t b = 0; b < ramp_batches; ++b) {
    admit(batch);
    commit_and_verify();
  }

  // 50 epochs of churn: two members depart (ack awaited, mirrored to the
  // twin in order), two fresh ones join, then the fan-out is verified
  // byte-for-byte across every live subscriber.
  std::size_t leave_cursor = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (int k = 0; k < 2; ++k) {
      auto& victim = sessions[leave_cursor++];
      victim.client->leave();
      twin->leave(workload::make_member_id(victim.member));
      victim.client.reset();  // daemon closes it at the commit
    }
    admit(2);
    commit_and_verify();
  }

  EXPECT_GE(epochs_checked, 60u);
  const auto counters = control.stats();
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.subscribers, target_sessions);
  EXPECT_EQ(counters.epochs_committed, epochs_checked);

  control.request_shutdown();
  const int status = daemon.terminate();
  EXPECT_TRUE(WIFEXITED(status));
}

}  // namespace
}  // namespace gk::net
