// Annotation-vs-runtime cross-check, passing half (see DESIGN.md §13).
//
// This TU is the correctly-annotated twin of misannotated_fail.cpp: every
// access to the guarded field holds the declared capability, so it must
// compile clean under `clang++ -Wthread-safety -Wthread-safety-beta
// -Werror`. CI compiles both fixtures; only this one may succeed. Together
// they prove the analysis is load-bearing — a toolchain or annotation
// regression that silenced the checker would flip the failing twin to
// green and fail the WILL_FAIL ctest entry.

#include <cstdint>

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void bump() {
    gk::common::MutexLock lock(mutex_);
    ++value_;
  }

  [[nodiscard]] std::uint64_t read() {
    gk::common::MutexLock lock(mutex_);
    return value_;
  }

 private:
  gk::common::Mutex mutex_;
  std::uint64_t value_ GK_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return static_cast<int>(counter.read()) - 1;
}
