// Annotation-vs-runtime cross-check, failing half (see DESIGN.md §13).
//
// Deliberately broken: bump() writes a GK_GUARDED_BY field without holding
// the declared mutex. `clang++ -Wthread-safety -Wthread-safety-beta
// -Werror` must REJECT this TU; the ctest entry is registered with
// WILL_FAIL so a checker that stops firing (wrong flags, attributes
// compiled out, wrapper losing its capability annotation) turns this
// fixture green and breaks the build instead of silently losing coverage.

#include <cstdint>

#include "common/mutex.h"

namespace {

class Counter {
 public:
  // BUG (on purpose): no lock held while writing value_.
  void bump() { ++value_; }

  [[nodiscard]] std::uint64_t read() {
    gk::common::MutexLock lock(mutex_);
    return value_;
  }

 private:
  gk::common::Mutex mutex_;
  std::uint64_t value_ GK_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return static_cast<int>(counter.read()) - 1;
}
