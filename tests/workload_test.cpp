#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/ensure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "workload/duration_model.h"
#include "workload/loss_assignment.h"
#include "workload/membership.h"
#include "workload/trace.h"
#include "workload/trace_io.h"

namespace gk::workload {
namespace {

std::shared_ptr<TwoClassExponential> paper_durations() {
  // Table 1: Ms = 3 minutes, Ml = 3 hours, alpha = 0.8.
  return std::make_shared<TwoClassExponential>(180.0, 10800.0, 0.8);
}

// ------------------------------------------------------ duration model ----

TEST(DurationModel, ExponentialMean) {
  ExponentialDuration model(120.0);
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(model.sample(rng).duration);
  EXPECT_NEAR(stats.mean(), 120.0, 2.0);
  EXPECT_DOUBLE_EQ(model.population_mean(), 120.0);
}

TEST(DurationModel, TwoClassMixFractions) {
  auto model = paper_durations();
  Rng rng(2);
  int short_count = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i)
    if (model->sample(rng).member_class == MemberClass::kShort) ++short_count;
  EXPECT_NEAR(static_cast<double>(short_count) / trials, 0.8, 0.01);
}

TEST(DurationModel, TwoClassPopulationMean) {
  auto model = paper_durations();
  EXPECT_NEAR(model->population_mean(), 0.8 * 180.0 + 0.2 * 10800.0, 1e-9);
}

TEST(DurationModel, TwoClassClassMeansSeparate) {
  auto model = paper_durations();
  Rng rng(3);
  RunningStats short_stats;
  RunningStats long_stats;
  for (int i = 0; i < 200000; ++i) {
    const auto s = model->sample(rng);
    (s.member_class == MemberClass::kShort ? short_stats : long_stats).add(s.duration);
  }
  EXPECT_NEAR(short_stats.mean(), 180.0, 5.0);
  EXPECT_NEAR(long_stats.mean(), 10800.0, 300.0);
}

TEST(DurationModel, ResidualWeightsByLittlesLaw) {
  // In steady state the share of *present* short-class members is
  // alpha*Ms / (alpha*Ms + (1-alpha)*Ml) = 144 / 2304 = 0.0625.
  auto model = paper_durations();
  Rng rng(4);
  int short_count = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i)
    if (model->sample_residual(rng).member_class == MemberClass::kShort) ++short_count;
  EXPECT_NEAR(static_cast<double>(short_count) / trials, 0.0625, 0.005);
}

TEST(DurationModel, ZipfIsSkewedLikeMbone) {
  // Almeroth-Ammar: mean in hours, median in minutes.
  ZipfDuration model(60.0, 10000, 1.2, 3600.0);
  Rng rng(5);
  Histogram hist(0.0, 600000.0, 10000);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const auto s = model.sample(rng);
    hist.add(s.duration);
    stats.add(s.duration);
  }
  EXPECT_GT(stats.mean(), 10.0 * hist.quantile(0.5));  // heavy tail
  EXPECT_NEAR(stats.mean(), model.population_mean(), model.population_mean() * 0.1);
}

// ------------------------------------------------------ loss assignment ----

TEST(LossAssignment, TwoPointRates) {
  TwoPointLoss loss(0.02, 0.20, 0.3);
  Rng rng(6);
  int high = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const double p = loss.assign(rng);
    EXPECT_TRUE(p == 0.02 || p == 0.20);
    if (p == 0.20) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / trials, 0.3, 0.01);
  EXPECT_NEAR(loss.mean(), 0.3 * 0.20 + 0.7 * 0.02, 1e-12);
}

TEST(LossAssignment, DiscreteDistribution) {
  DiscreteLoss loss({{0.01, 1.0}, {0.05, 2.0}, {0.25, 1.0}});
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(loss.assign(rng));
  EXPECT_NEAR(stats.mean(), loss.mean(), 0.002);
  EXPECT_NEAR(loss.mean(), (0.01 + 2 * 0.05 + 0.25) / 4.0, 1e-12);
}

// ---------------------------------------------------------- membership ----

TEST(Membership, ArrivalRateFollowsLittlesLaw) {
  auto durations = paper_durations();
  auto losses = std::make_shared<UniformLoss>(0.02);
  MembershipGenerator gen(durations, losses, 10000, Rng(8));
  // lambda = N / E[T] = 10000 / 2304.
  EXPECT_NEAR(gen.arrival_rate(), 10000.0 / 2304.0, 1e-9);
}

TEST(Membership, BootstrapPopulatesTargetSize) {
  auto gen = MembershipGenerator(paper_durations(), std::make_shared<UniformLoss>(0.0),
                                 5000, Rng(9));
  const auto members = gen.bootstrap();
  EXPECT_EQ(members.size(), 5000u);
  for (const auto& m : members) {
    EXPECT_DOUBLE_EQ(m.join_time, 0.0);
    EXPECT_GT(m.duration, 0.0);
  }
}

TEST(Membership, JoinTimesAreMonotone) {
  auto gen = MembershipGenerator(paper_durations(), std::make_shared<UniformLoss>(0.0),
                                 1000, Rng(10));
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto m = gen.next_join();
    EXPECT_GE(m.join_time, last);
    last = m.join_time;
  }
}

// --------------------------------------------------------------- trace ----

TEST(Trace, SteadyStateChurnBalances) {
  auto gen = MembershipGenerator(paper_durations(), std::make_shared<UniformLoss>(0.0),
                                 20000, Rng(11));
  const auto trace = MembershipTrace::generate(gen, 60.0, 100);
  ASSERT_EQ(trace.epochs().size(), 100u);

  // Expected joins per 60 s epoch: lambda * Tp = 20000/2304 * 60 = 520.8.
  EXPECT_NEAR(trace.mean_joins_per_epoch(), 520.8, 40.0);
  // In steady state leaves track joins.
  EXPECT_NEAR(trace.mean_leaves_per_epoch(), trace.mean_joins_per_epoch(),
              0.15 * trace.mean_joins_per_epoch());
}

TEST(Trace, LeavesOnlyForKnownMembers) {
  auto gen = MembershipGenerator(paper_durations(), std::make_shared<UniformLoss>(0.0),
                                 500, Rng(12));
  const auto trace = MembershipTrace::generate(gen, 60.0, 50);
  for (const auto& epoch : trace.epochs())
    for (const auto id : epoch.leaves)
      EXPECT_NO_THROW((void)trace.profile(id));
}

TEST(Trace, EpochBoundariesRespected) {
  auto gen = MembershipGenerator(paper_durations(), std::make_shared<UniformLoss>(0.0),
                                 2000, Rng(13));
  const auto trace = MembershipTrace::generate(gen, 30.0, 40);
  for (const auto& epoch : trace.epochs()) {
    for (const auto& join : epoch.joins) {
      EXPECT_LE(join.join_time, epoch.period_end);
      EXPECT_GT(join.join_time, epoch.period_end - 30.0);
    }
    for (const auto id : epoch.leaves) {
      const auto& profile = trace.profile(id);
      EXPECT_LE(profile.departure_time(), epoch.period_end);
    }
  }
}

TEST(TraceIo, RoundTripPreservesEverything) {
  auto gen = MembershipGenerator(paper_durations(),
                                 std::make_shared<TwoPointLoss>(0.02, 0.2, 0.3), 200,
                                 Rng(21));
  const auto original = MembershipTrace::generate(gen, 45.0, 12);

  std::stringstream buffer;
  write_trace_csv(original, buffer);
  const auto restored = read_trace_csv(buffer);

  EXPECT_DOUBLE_EQ(restored.rekey_period(), original.rekey_period());
  ASSERT_EQ(restored.initial_members().size(), original.initial_members().size());
  ASSERT_EQ(restored.epochs().size(), original.epochs().size());
  for (std::size_t e = 0; e < original.epochs().size(); ++e) {
    const auto& a = original.epochs()[e];
    const auto& b = restored.epochs()[e];
    ASSERT_EQ(a.joins.size(), b.joins.size()) << "epoch " << e;
    ASSERT_EQ(a.leaves.size(), b.leaves.size()) << "epoch " << e;
    for (std::size_t j = 0; j < a.joins.size(); ++j) {
      EXPECT_EQ(a.joins[j].id, b.joins[j].id);
      EXPECT_EQ(a.joins[j].member_class, b.joins[j].member_class);
      EXPECT_DOUBLE_EQ(a.joins[j].join_time, b.joins[j].join_time);
      EXPECT_DOUBLE_EQ(a.joins[j].duration, b.joins[j].duration);
      EXPECT_DOUBLE_EQ(a.joins[j].loss_rate, b.joins[j].loss_rate);
    }
    for (std::size_t l = 0; l < a.leaves.size(); ++l)
      EXPECT_EQ(a.leaves[l], b.leaves[l]);
  }
  // Profiles survive too.
  const auto id = original.epochs().front().joins.empty()
                      ? original.initial_members().front().id
                      : original.epochs().front().joins.front().id;
  EXPECT_DOUBLE_EQ(restored.profile(id).duration, original.profile(id).duration);
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream empty;
    EXPECT_THROW((void)read_trace_csv(empty), ContractViolation);
  }
  {
    std::stringstream bad_header("hello\nworld\n");
    EXPECT_THROW((void)read_trace_csv(bad_header), ContractViolation);
  }
  {
    std::stringstream bad_row(
        "# rekey_period=60 epochs=1\nkind,epoch,member,class,join_time,duration,"
        "loss_rate\njoin,0,1,short\n");
    EXPECT_THROW((void)read_trace_csv(bad_row), ContractViolation);
  }
  {
    std::stringstream bad_epoch(
        "# rekey_period=60 epochs=1\nkind,epoch,member,class,join_time,duration,"
        "loss_rate\njoin,5,1,short,0,10,0\n");
    EXPECT_THROW((void)read_trace_csv(bad_epoch), ContractViolation);
  }
  {
    std::stringstream unknown_leave(
        "# rekey_period=60 epochs=1\nkind,epoch,member,class,join_time,duration,"
        "loss_rate\nleave,0,99,short,0,0,0\n");
    EXPECT_THROW((void)read_trace_csv(unknown_leave), ContractViolation);
  }
}

TEST(Trace, DeterministicForSameSeed) {
  auto make = [] {
    auto gen = MembershipGenerator(paper_durations(),
                                   std::make_shared<UniformLoss>(0.0), 300, Rng(77));
    return MembershipTrace::generate(gen, 60.0, 20);
  };
  const auto a = make();
  const auto b = make();
  ASSERT_EQ(a.epochs().size(), b.epochs().size());
  for (std::size_t e = 0; e < a.epochs().size(); ++e) {
    EXPECT_EQ(a.epochs()[e].joins.size(), b.epochs()[e].joins.size());
    EXPECT_EQ(a.epochs()[e].leaves.size(), b.epochs()[e].leaves.size());
  }
}

}  // namespace
}  // namespace gk::workload
