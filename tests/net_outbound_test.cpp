// net::StragglerPolicy / net::OutboundGate: the one backpressure policy
// object shared by transport::run_resync (the simulated unicast path) and
// net::Server's socket fan-out. The property pinned here is the PR's
// refactor contract: for any policy and any failure pattern, the schedule
// the gate produces — attempts burned, backoff rounds waited, eviction
// round — is bit-for-bit the schedule run_resync produces, whether the
// resync rides the scripted oracle or a netsim::Receiver channel.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/function_ref.h"
#include "common/rng.h"
#include "crypto/keywrap.h"
#include "net/outbound.h"
#include "netsim/receiver.h"
#include "transport/resync.h"

namespace gk::net {
namespace {

TEST(StragglerPolicy, BackoffDoublesAndSaturates) {
  const StragglerPolicy policy{6, 1, 8};
  EXPECT_EQ(policy.backoff_after(1), 1u);
  EXPECT_EQ(policy.backoff_after(2), 2u);
  EXPECT_EQ(policy.backoff_after(3), 4u);
  EXPECT_EQ(policy.backoff_after(4), 8u);
  EXPECT_EQ(policy.backoff_after(5), 8u);
  // A shift past the width of size_t must saturate, not wrap to zero.
  EXPECT_EQ(policy.backoff_after(70), 8u);
  EXPECT_EQ(policy.backoff_after(64), 8u);
}

TEST(OutboundGate, AlwaysFailingScheduleIsDeterministic) {
  OutboundGate gate(StragglerPolicy{3, 1, 4});
  std::vector<char> trace;  // 'D' = delivery attempt, 'B' = backoff round
  bool evicted = false;
  for (int round = 0; round < 32 && !evicted; ++round) {
    switch (gate.begin_round()) {
      case OutboundGate::Round::kBackoff:
        trace.push_back('B');
        break;
      case OutboundGate::Round::kDeliver:
        trace.push_back('D');
        evicted = gate.note_failure();
        break;
    }
  }
  // attempt, wait 1, attempt, wait 2, attempt -> evict.
  EXPECT_EQ(std::string(trace.begin(), trace.end()), "DBDBBD");
  EXPECT_TRUE(evicted);
  EXPECT_EQ(gate.attempts(), 3u);
  EXPECT_EQ(gate.rounds_waited(), 3u);
}

TEST(OutboundGate, ResetRestoresFullBudget) {
  OutboundGate gate(StragglerPolicy{2, 1, 2});
  EXPECT_EQ(gate.begin_round(), OutboundGate::Round::kDeliver);
  EXPECT_FALSE(gate.note_failure());
  gate.reset();
  EXPECT_EQ(gate.attempts(), 0u);
  EXPECT_EQ(gate.rounds_waited(), 0u);
  // Fresh budget: a further failure is attempt 1 of 2 again, not eviction.
  EXPECT_EQ(gate.begin_round(), OutboundGate::Round::kDeliver);
  EXPECT_FALSE(gate.note_failure());
}

/// The daemon's deliver_epoch loop, reduced to its schedule: one gate
/// round per epoch, `fails[k]` scripts whether delivery attempt k+1 finds
/// the subscriber blocked. Returns {attempts, rounds_waited, evicted,
/// rounds_elapsed}.
struct GateSchedule {
  std::size_t attempts = 0;
  std::size_t rounds_waited = 0;
  bool evicted = false;
  bool delivered = false;
};

GateSchedule replay_gate(const StragglerPolicy& policy, const std::vector<bool>& fails) {
  OutboundGate gate(policy);
  GateSchedule schedule;
  std::size_t attempt = 0;
  for (int round = 0; round < 4096; ++round) {
    if (gate.begin_round() == OutboundGate::Round::kBackoff) continue;
    const bool fail = attempt < fails.size() ? fails[attempt] : false;
    ++attempt;
    if (!fail) {
      schedule.delivered = true;
      break;
    }
    if (gate.note_failure()) {
      schedule.evicted = true;
      break;
    }
  }
  schedule.attempts = gate.attempts() + (schedule.delivered ? 1 : 0);
  schedule.rounds_waited = gate.rounds_waited();
  return schedule;
}

/// run_resync counts the delivering attempt too; align the gate replay's
/// attempt accounting with ResyncReport in replay_gate above.
TEST(SharedSchedule, GateMatchesResyncOracleForAnyPattern) {
  Rng rng(0xDEC0DEULL);
  const std::vector<crypto::WrappedKey> bundle(1);  // one packet per attempt
  for (int trial = 0; trial < 500; ++trial) {
    transport::ResyncConfig config;
    config.keys_per_packet = 16;
    config.retry_budget = 1 + rng.uniform_u64(8);
    config.base_backoff_rounds = rng.uniform_u64(4);
    config.max_backoff_rounds = 1 + rng.uniform_u64(10);

    std::vector<bool> fails(config.retry_budget + 2);
    for (auto&& f : fails) f = rng.uniform() < 0.7;

    std::size_t cursor = 0;
    const auto report = transport::run_resync(
        bundle,
        common::FunctionRef<bool()>([&fails, &cursor] {
          const bool fail = cursor < fails.size() ? fails[cursor] : false;
          ++cursor;
          return !fail;
        }),
        config);

    const auto schedule = replay_gate(config.straggler(), fails);
    EXPECT_EQ(report.attempts, schedule.attempts) << "trial " << trial;
    EXPECT_EQ(report.rounds_waited, schedule.rounds_waited) << "trial " << trial;
    EXPECT_EQ(report.evicted, schedule.evicted) << "trial " << trial;
    EXPECT_EQ(report.delivered, schedule.delivered) << "trial " << trial;
  }
}

TEST(SharedSchedule, NetsimChannelAndOracleOverloadAreOnePath) {
  // Two netsim receivers built from the same seed draw identical loss
  // sequences, so driving one through the Receiver overload and wrapping
  // its twin in the oracle overload must produce identical reports across
  // lossy regimes — including evictions at near-total loss.
  const std::vector<crypto::WrappedKey> bundle(5);
  for (const double loss : {0.0, 0.3, 0.8, 0.99}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      transport::ResyncConfig config;
      config.keys_per_packet = 2;  // 3 packets per attempt
      config.retry_budget = 3;

      netsim::Receiver channel(workload::make_member_id(1), loss, Rng(seed));
      netsim::Receiver twin(workload::make_member_id(1), loss, Rng(seed));
      const auto via_channel = transport::run_resync(bundle, channel, config);
      const auto via_oracle = transport::run_resync(
          bundle, common::FunctionRef<bool()>([&twin] { return twin.receives(); }),
          config);

      EXPECT_EQ(via_channel.delivered, via_oracle.delivered) << loss << "/" << seed;
      EXPECT_EQ(via_channel.evicted, via_oracle.evicted) << loss << "/" << seed;
      EXPECT_EQ(via_channel.attempts, via_oracle.attempts) << loss << "/" << seed;
      EXPECT_EQ(via_channel.rounds_waited, via_oracle.rounds_waited)
          << loss << "/" << seed;
      EXPECT_EQ(via_channel.packets_sent, via_oracle.packets_sent) << loss << "/" << seed;
      EXPECT_EQ(via_channel.key_transmissions, via_oracle.key_transmissions)
          << loss << "/" << seed;
      EXPECT_EQ(via_channel.received, via_oracle.received) << loss << "/" << seed;
    }
  }
}

}  // namespace
}  // namespace gk::net
