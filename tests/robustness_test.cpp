// Failure injection and adversarial robustness: corrupted packets, replay,
// rollback, truncated transport sessions, and end-to-end "RS decode of
// tampered shards cannot smuggle keys past the MAC".

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "lkh/key_ring.h"
#include "lkh/key_tree.h"
#include "transport/packet.h"
#include "transport/rs_code.h"
#include "transport/session.h"
#include "transport/wka_bkr.h"

namespace gk {
namespace {

using workload::make_member_id;

// ------------------------------------------------------- crypto edges ----

TEST(Robustness, Sha256PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding boundaries must all hash
  // without corruption; verify streaming == one-shot for each.
  Rng rng(1);
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const auto oneshot = crypto::sha256(data);
    crypto::Sha256 h;
    for (std::size_t i = 0; i < len; ++i)
      h.update(std::span<const std::uint8_t>(&data[i], 1));
    EXPECT_EQ(crypto::to_hex(h.finish()), crypto::to_hex(oneshot)) << "len " << len;
  }
}

// ------------------------------------------------------ KeyRing attacks ----

class RingFixture : public ::testing::Test {
 protected:
  RingFixture() : tree_(3, Rng(42)) {
    for (std::uint64_t i = 0; i < 9; ++i) {
      const auto grant = tree_.insert(make_member_id(i));
      rings_.emplace(i, lkh::KeyRing(make_member_id(i), grant.leaf_id,
                                     grant.individual_key));
    }
    setup_ = tree_.commit(0);
    for (auto& [id, ring] : rings_) ring.process(setup_);
  }

  lkh::KeyTree tree_;
  std::map<std::uint64_t, lkh::KeyRing> rings_;
  lkh::RekeyMessage setup_;
};

TEST_F(RingFixture, CorruptedWrapIsIgnoredOthersStillApply) {
  tree_.remove(make_member_id(4));
  auto message = tree_.commit(1);
  ASSERT_GE(message.wraps.size(), 2u);
  message.wraps[0].ciphertext[3] ^= 0xff;  // bit-flip one wrap in flight

  // Everyone who does not depend on the corrupted wrap stays current; the
  // corrupted wrap never yields a key (MAC), so no ring is poisoned.
  int current = 0;
  for (auto& [id, ring] : rings_) {
    if (id == 4) continue;
    ring.process(message);
    if (ring.holds(tree_.root_id(), tree_.root_key().version)) ++current;
  }
  EXPECT_GE(current, 1);
  EXPECT_LT(current, 8);  // someone was downstream of the corrupted wrap
}

TEST_F(RingFixture, ReplayedOldMessageCannotRollBack) {
  tree_.remove(make_member_id(4));
  const auto message1 = tree_.commit(1);
  tree_.remove(make_member_id(5));
  const auto message2 = tree_.commit(2);

  auto& ring = rings_.at(0);
  ring.process(message1);
  ring.process(message2);
  ASSERT_TRUE(ring.holds(tree_.root_id(), tree_.root_key().version));

  // Replaying the older epoch must not downgrade the stored version.
  ring.process(message1);
  EXPECT_TRUE(ring.holds(tree_.root_id(), tree_.root_key().version));
}

TEST_F(RingFixture, ForgedWrapWithWrongKeyIsRejected) {
  Rng attacker(666);
  const auto fake_kek = crypto::Key128::random(attacker);
  const auto fake_payload = crypto::Key128::random(attacker);
  // Attacker crafts a wrap claiming to carry a newer group key, but cannot
  // know any KEK the ring holds.
  lkh::RekeyMessage forged;
  forged.wraps.push_back(crypto::wrap_key(fake_kek, tree_.root_id(),
                                          tree_.root_key().version, fake_payload,
                                          tree_.root_id(),
                                          tree_.root_key().version + 7, attacker));
  auto& ring = rings_.at(0);
  EXPECT_EQ(ring.process(forged), 0u);
  EXPECT_FALSE(ring.holds(tree_.root_id(), tree_.root_key().version + 7));
}

TEST_F(RingFixture, DuplicatedWrapsAreIdempotent) {
  tree_.remove(make_member_id(4));
  auto message = tree_.commit(1);
  const auto original = message.wraps;
  message.wraps.insert(message.wraps.end(), original.begin(), original.end());
  message.wraps.insert(message.wraps.end(), original.begin(), original.end());
  auto& ring = rings_.at(0);
  const auto learned = ring.process(message);
  EXPECT_LE(learned, original.size());
  EXPECT_TRUE(ring.holds(tree_.root_id(), tree_.root_key().version));
}

// ----------------------------------------------- transport degradation ----

TEST(Robustness, TransportReportsIncompleteDeliveryAtRoundCap) {
  Rng rng(7);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> payload;
  for (std::uint64_t i = 0; i < 64; ++i)
    payload.push_back(crypto::wrap_key(kek, crypto::make_key_id(i + 1), 0,
                                       crypto::Key128::random(rng),
                                       crypto::make_key_id(100 + i), 1, rng));
  std::vector<transport::SessionReceiver> receivers;
  for (std::size_t r = 0; r < 64; ++r) {
    std::vector<std::uint32_t> interest{static_cast<std::uint32_t>(r)};
    receivers.emplace_back(netsim::Receiver(make_member_id(r), 0.95, rng.fork()),
                           std::move(interest));
  }
  transport::WkaBkrTransport::Config config;
  config.max_rounds = 1;  // starve the protocol
  config.max_weight = 1;
  transport::WkaBkrTransport transport(config);
  const auto report = transport.deliver(payload, receivers);
  EXPECT_FALSE(report.all_delivered);
  // The contract: a false all_delivered means the protocol *gave up* at its
  // round cap, never "still in progress".
  EXPECT_TRUE(report.rounds_capped);
  EXPECT_GT(report.nacks, 0u);
}

TEST(Robustness, CompletedDeliveryIsNotReportedAsCapped) {
  Rng rng(9);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> payload{
      crypto::wrap_key(kek, crypto::make_key_id(1), 0, crypto::Key128::random(rng),
                       crypto::make_key_id(2), 1, rng)};
  std::vector<transport::SessionReceiver> receivers;
  receivers.emplace_back(netsim::Receiver(make_member_id(1), 0.0, rng.fork()),
                         std::vector<std::uint32_t>{0});
  transport::WkaBkrTransport transport({});
  const auto report = transport.deliver(payload, receivers);
  EXPECT_TRUE(report.all_delivered);
  EXPECT_FALSE(report.rounds_capped);
}

TEST(Robustness, TamperedRsShardCannotForgeKeys) {
  // End-to-end security argument for FEC transport: RS is an erasure code,
  // not an authenticator — a tampered shard decodes to garbage bytes — but
  // the wraps inside carry MACs, so members reject the result.
  Rng rng(8);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> payload;
  for (std::uint64_t i = 0; i < 8; ++i)
    payload.push_back(crypto::wrap_key(kek, crypto::make_key_id(1), 0,
                                       crypto::Key128::random(rng),
                                       crypto::make_key_id(10 + i), 1, rng));
  // Two source packets of four wraps each.
  transport::Packet p0;
  p0.key_indices = {0, 1, 2, 3};
  transport::Packet p1;
  p1.key_indices = {4, 5, 6, 7};
  auto s0 = transport::serialize_packet(p0, payload);
  auto s1 = transport::serialize_packet(p1, payload);

  transport::ReedSolomon rs(2, 2);
  const std::vector<std::vector<std::uint8_t>> sources{s0, s1};
  auto parity0 = rs.encode_shard(sources, 2);
  auto parity1 = rs.encode_shard(sources, 3);
  parity1[10] ^= 0x55;  // in-flight tampering

  const auto decoded = rs.decode({{2, parity0}, {3, parity1}});
  ASSERT_TRUE(decoded.has_value());  // decoding "succeeds"...
  EXPECT_NE((*decoded)[0], s0);      // ...but yields corrupted bytes

  // RS error propagation is byte-positional: flipping byte 10 of a parity
  // shard corrupts byte 10 of every decoded source. The wrap covering that
  // byte fails its MAC; the member never accepts forged key material.
  const auto wraps = transport::deserialize_wraps((*decoded)[0], 4);
  EXPECT_FALSE(crypto::unwrap_key(kek, wraps[0]).has_value());
  // Uncorrupted wraps in the same shard still round-trip.
  int unwrapped = 0;
  for (std::size_t i = 1; i < wraps.size(); ++i)
    if (crypto::unwrap_key(kek, wraps[i]).has_value()) ++unwrapped;
  EXPECT_EQ(unwrapped, 3);

  // With untampered shards the same path round-trips perfectly.
  const auto clean = rs.decode({{2, rs.encode_shard(sources, 2)},
                                {3, rs.encode_shard(sources, 3)}});
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ((*clean)[0], s0);
  const auto good_wraps = transport::deserialize_wraps((*clean)[0], 4);
  for (const auto& wrap : good_wraps)
    EXPECT_TRUE(crypto::unwrap_key(kek, wrap).has_value());
}

TEST(Robustness, TruncatedPacketBytesAreRejected) {
  Rng rng(9);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> payload{crypto::wrap_key(
      kek, crypto::make_key_id(1), 0, crypto::Key128::random(rng),
      crypto::make_key_id(2), 1, rng)};
  transport::Packet packet;
  packet.key_indices = {0};
  auto bytes = transport::serialize_packet(packet, payload);
  bytes.pop_back();
  EXPECT_THROW(transport::deserialize_wraps(bytes, 1), ContractViolation);
}

// ------------------------------------------------- server-side misuse ----

TEST(Robustness, CommitWithNothingStagedIsFreeAndStable) {
  lkh::KeyTree tree(4, Rng(10));
  for (std::uint64_t i = 0; i < 20; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  const auto version = tree.root_key().version;
  const auto idle = tree.commit(1);
  EXPECT_EQ(idle.cost(), 0u);
  EXPECT_EQ(tree.root_key().version, version);  // no gratuitous churn
}

TEST(Robustness, RemoveLastMemberLeavesUsableTree) {
  lkh::KeyTree tree(3, Rng(11));
  tree.insert(make_member_id(1));
  (void)tree.commit(0);
  tree.remove(make_member_id(1));
  (void)tree.commit(1);
  EXPECT_TRUE(tree.empty());
  // The tree must accept a fresh session.
  const auto grant = tree.insert(make_member_id(2));
  (void)tree.commit(2);
  lkh::KeyRing ring(make_member_id(2), grant.leaf_id, grant.individual_key);
  tree.remove(make_member_id(2));
  tree.insert(make_member_id(3));
  auto msg = tree.commit(3);
  EXPECT_GE(msg.cost(), 1u);
}

TEST(Robustness, InterleavedJoinLeaveSameEpoch) {
  lkh::KeyTree tree(3, Rng(12));
  for (std::uint64_t i = 0; i < 9; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);

  // A member joins and leaves within the same batch.
  tree.insert(make_member_id(100));
  tree.remove(make_member_id(100));
  tree.insert(make_member_id(101));
  const auto grant = tree.insert(make_member_id(102));
  tree.remove(make_member_id(3));
  const auto message = tree.commit(1);

  lkh::KeyRing ring(make_member_id(102), grant.leaf_id, grant.individual_key);
  ring.process(message);
  EXPECT_TRUE(ring.holds(tree.root_id(), tree.root_key().version));
  EXPECT_FALSE(tree.contains(make_member_id(100)));
  EXPECT_TRUE(tree.contains(make_member_id(101)));
}

}  // namespace
}  // namespace gk
