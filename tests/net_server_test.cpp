// net::Server: the epoll key-server daemon over loopback TCP. Covers the
// protocol state machine (hello/join/leave/resync/commit and their error
// frames), byte-identity of served rekey records against a twin in-process
// engine for several scheme/shard configurations, and the PR's headline
// refactor property: a deliberately stalled subscriber is evicted by
// exactly the straggler schedule transport::run_resync applies in-sim —
// same attempts, same backoff rounds, same epoch span.

#include <sys/socket.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/function_ref.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/server.h"
#include "partition/factory.h"
#include "transport/resync.h"
#include "wire/error.h"
#include "wire/record.h"

namespace gk::net {
namespace {

/// In-process daemon on its own thread. The loop thread owns the server;
/// the test thread talks TCP like any member would, and only reads
/// stats()/engine() after stop() + join.
class ServerThread {
 public:
  explicit ServerThread(ServerConfig config) : server_(std::move(config)) {
    port_ = server_.listen();
    thread_ = std::thread([this] { server_.run(); });
  }

  /// Host an engine built elsewhere (the REPL-embedding path).
  ServerThread(std::unique_ptr<engine::DurableRekeyServer> engine, ServerConfig config)
      : server_(std::move(engine), std::move(config)) {
    port_ = server_.listen();
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerThread() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_.stop();
      thread_.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] Server& server() noexcept { return server_; }

 private:
  Server server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

std::unique_ptr<engine::DurableRekeyServer> twin_of(const ServerConfig& config) {
  return partition::make_sharded_server(config.scheme, config.scheme_config,
                                        config.shards, Rng(config.seed));
}

workload::MemberProfile profile_of(std::uint64_t member) {
  workload::MemberProfile profile;
  profile.id = workload::make_member_id(member);
  profile.member_class = workload::MemberClass::kShort;
  return profile;
}

TEST(NetServer, HelloJoinCommitResyncRoundTrip) {
  ServerConfig config;
  config.scheme = "tt";
  ServerThread daemon(config);
  auto twin = twin_of(config);

  Client alice;
  alice.connect("127.0.0.1", daemon.port());
  const auto hello = alice.hello(1);
  EXPECT_EQ(hello.members, 0u);

  const auto alice_reg = alice.join(workload::MemberClass::kShort);
  const auto twin_alice = twin->join(profile_of(1));
  EXPECT_EQ(alice_reg.leaf_id, crypto::raw(twin_alice.leaf_id));
  EXPECT_EQ(alice_reg.individual_key, twin_alice.individual_key);

  Client bob;
  bob.connect("127.0.0.1", daemon.port());
  (void)bob.hello(2);
  (void)bob.join(workload::MemberClass::kShort);
  (void)twin->join(profile_of(2));

  const auto ack = bob.commit();
  const auto twin_out = twin->end_epoch();
  EXPECT_EQ(ack.epoch, twin_out.epoch);
  EXPECT_EQ(ack.subscribers, 2u);

  const auto expected = wire::RekeyRecord::encode(twin_out.message);
  const auto alice_rekey = alice.wait_rekey();
  const auto bob_rekey = bob.wait_rekey();
  EXPECT_EQ(alice_rekey.payload, expected);
  EXPECT_EQ(bob_rekey.payload, expected);

  // Post-commit, a member can pull its catch-up bundle; it carries alice's
  // full path (>= leaf + root for a 2-member tree).
  const auto bundle = alice.resync();
  EXPECT_GE(bundle.size(), 2u);

  // A fresh member sees the daemon's group size in its hello-ack.
  Client carol;
  carol.connect("127.0.0.1", daemon.port());
  EXPECT_EQ(carol.hello(3).members, 2u);
}

TEST(NetServer, LeaveStagesDepartureAndClosesAtCommit) {
  ServerConfig config;
  ServerThread daemon(config);
  auto twin = twin_of(config);

  Client alice;
  Client bob;
  alice.connect("127.0.0.1", daemon.port());
  bob.connect("127.0.0.1", daemon.port());
  (void)alice.hello(1);
  (void)bob.hello(2);
  (void)alice.join(workload::MemberClass::kShort);
  (void)bob.join(workload::MemberClass::kShort);
  (void)twin->join(profile_of(1));
  (void)twin->join(profile_of(2));
  (void)alice.commit();
  (void)twin->end_epoch();
  (void)alice.wait_rekey();
  (void)bob.wait_rekey();

  bob.leave();
  twin->leave(workload::make_member_id(2));
  const auto ack = alice.commit();
  const auto twin_out = twin->end_epoch();
  EXPECT_EQ(ack.subscribers, 1u);  // bob no longer receives the fan-out
  EXPECT_EQ(alice.wait_rekey().payload, wire::RekeyRecord::encode(twin_out.message));

  // The daemon closes bob's connection at the commit; his next read EOFs.
  EXPECT_THROW((void)bob.next_frame(), ContractViolation);
}

TEST(NetServer, ProtocolErrorsAreTypedFrames) {
  ServerConfig config;
  ServerThread daemon(config);

  // Join before hello.
  Client early;
  early.connect("127.0.0.1", daemon.port());
  early.send(make_join({workload::MemberClass::kShort}));
  auto frame = early.next_frame();
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(parse_error(frame).code, FrameErrorCode::kBadState);

  // Resync before the admitting commit.
  Client eager;
  eager.connect("127.0.0.1", daemon.port());
  (void)eager.hello(7);
  (void)eager.join(workload::MemberClass::kShort);
  eager.send(make_empty(FrameType::kResync));
  frame = eager.next_frame();
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(parse_error(frame).code, FrameErrorCode::kNotAdmitted);

  // Duplicate member id.
  Client imposter;
  imposter.connect("127.0.0.1", daemon.port());
  imposter.send(make_hello({7, kProtocolVersion}));
  frame = imposter.next_frame();
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(parse_error(frame).code, FrameErrorCode::kDuplicateMember);

  // Future protocol version.
  Client traveler;
  traveler.connect("127.0.0.1", daemon.port());
  traveler.send(make_hello({8, kProtocolVersion + 1}));
  frame = traveler.next_frame();
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(parse_error(frame).code, FrameErrorCode::kBadVersion);
}

TEST(NetServer, MalformedFramingDropsTheConnectionNotTheDaemon) {
  ServerConfig config;
  ServerThread daemon(config);

  // A hostile length prefix (zero) poisons the stream; the daemon drops
  // the connection without serving anything further.
  Client hostile;
  hostile.connect("127.0.0.1", daemon.port());
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(hostile.raw_fd(), zeros, sizeof(zeros), MSG_NOSIGNAL), 4);
  EXPECT_THROW((void)hostile.next_frame(), ContractViolation);  // EOF

  // A well-framed but wrong-length payload is a typed parser error, and
  // the connection (pre-hello) is likewise dropped.
  Client raw;
  raw.connect("127.0.0.1", daemon.port());
  raw.send(Frame(FrameType::kHello, std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_THROW((void)raw.next_frame(), ContractViolation);

  // The daemon survives both and keeps serving.
  Client healthy;
  healthy.connect("127.0.0.1", daemon.port());
  EXPECT_EQ(healthy.hello(3).members, 0u);
}

TEST(NetServer, EngineRejectionRefusesTheConnectionNotTheDaemon) {
  // Host a pre-populated engine (the REPL's `serve` path): member 1 is
  // already in the group before the daemon ever sees a socket. A network
  // join for that id violates the engine's join contract — the daemon must
  // surface it as a typed kRefused error and drop that one connection, not
  // let the exception unwind the event loop.
  ServerConfig config;
  auto engine = twin_of(config);
  (void)engine->join(profile_of(1));
  (void)engine->end_epoch();
  ServerThread daemon(std::move(engine), config);

  Client imposter;
  imposter.connect("127.0.0.1", daemon.port());
  (void)imposter.hello(1);  // registry is empty, so the hello is fine
  EXPECT_THROW((void)imposter.join(workload::MemberClass::kShort), wire::WireError);

  // Group state is intact and the daemon keeps serving.
  Client fresh;
  fresh.connect("127.0.0.1", daemon.port());
  EXPECT_EQ(fresh.hello(2).members, 1u);
  (void)fresh.join(workload::MemberClass::kShort);
  const auto ack = fresh.commit();
  EXPECT_EQ(ack.subscribers, 1u);
}

TEST(NetServer, ServesAnySchemeAndShardCount) {
  // "batch" ignores SchemeConfig::id_base, so it only serves unsharded.
  const std::pair<const char*, unsigned> combos[] = {
      {"one-tree", 1}, {"one-tree", 3}, {"qt", 1}, {"qt", 3}, {"batch", 1}, {"tt", 3}};
  for (const auto& [scheme, shards] : combos) {
    {
      ServerConfig config;
      config.scheme = scheme;
      config.shards = shards;
      config.seed = 77;
      ServerThread daemon(config);
      auto twin = twin_of(config);

      std::vector<Client> clients(4);
      for (std::size_t i = 0; i < clients.size(); ++i) {
        clients[i].connect("127.0.0.1", daemon.port());
        (void)clients[i].hello(i + 1);
        (void)clients[i].join(workload::MemberClass::kShort);
        (void)twin->join(profile_of(i + 1));
      }
      (void)clients[0].commit();
      const auto expected = wire::RekeyRecord::encode(twin->end_epoch().message);
      for (auto& client : clients)
        EXPECT_EQ(client.wait_rekey().payload, expected)
            << scheme << " x" << shards;
    }
  }
}

// The multi-layer refactor's acceptance property: the socket path and the
// sim path share one straggler policy object, so a subscriber that stops
// reading is evicted on the same schedule run_resync would evict it —
// identical attempt count, identical backoff rounds, and an epoch span
// equal to the schedule's length.
TEST(NetServer, StalledSubscriberEvictedOnTheSimSchedule) {
  ServerConfig config;
  config.scheme = "tt";
  config.straggler = {3, 1, 4};     // D B D BB D -> evict on attempt 3
  config.max_outbound_bytes = 512;  // any lingering backlog counts as blocked
  config.session_sndbuf = 1;        // kernel clamps to its minimum (~4.5 KiB)
  ServerThread daemon(config);

  Client stalled;
  stalled.connect("127.0.0.1", daemon.port());
  // Clamp the receive buffer before any fan-out data flows so the stall
  // backs up into the daemon's queue after a few KiB, not a few hundred.
  const int tiny = 4096;
  ::setsockopt(stalled.raw_fd(), SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  (void)stalled.hello(1000);
  (void)stalled.join(workload::MemberClass::kShort);
  // From here on the stalled client never reads its socket again.

  Client driver;
  driver.connect("127.0.0.1", daemon.port());
  (void)driver.hello(1001);
  (void)driver.join(workload::MemberClass::kShort);

  // Churn a rotating cohort each epoch so every rekey record is far larger
  // than the stalled session's send buffer.
  std::uint64_t next_member = 1;
  std::vector<Client> cohort;
  const auto refill = [&] {
    std::vector<Client> fresh(24);
    for (auto& member : fresh) {
      member.connect("127.0.0.1", daemon.port());
      (void)member.hello(next_member);
      (void)member.join(workload::MemberClass::kShort);
      ++next_member;
    }
    cohort.swap(fresh);
  };
  refill();

  bool evicted = false;
  std::uint64_t evicted_at = 0;
  for (int epoch = 0; epoch < 100 && !evicted; ++epoch) {
    for (auto& member : cohort) member.leave();
    refill();
    const auto ack = driver.commit();
    (void)driver.wait_rekey();
    for (auto& member : cohort) (void)member.wait_rekey();
    // kStats reflects the eviction as soon as it happens.
    const auto counters = driver.stats();
    if (counters.evictions > 0) {
      evicted = true;
      evicted_at = ack.epoch;
    }
  }
  ASSERT_TRUE(evicted) << "stalled subscriber never evicted";
  daemon.stop();

  // The daemon's record must equal the sim schedule for a member that
  // never receives: run_resync with an always-failing oracle.
  transport::ResyncConfig resync;
  resync.retry_budget = config.straggler.retry_budget;
  resync.base_backoff_rounds = config.straggler.base_backoff_rounds;
  resync.max_backoff_rounds = config.straggler.max_backoff_rounds;
  const std::vector<crypto::WrappedKey> bundle(1);
  const auto sim = transport::run_resync(
      bundle, common::FunctionRef<bool()>([] { return false; }), resync);
  ASSERT_TRUE(sim.evicted);

  const auto& log = daemon.server().stats().eviction_log;
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(workload::raw(log[0].member), 1000u);
  EXPECT_EQ(log[0].attempts, sim.attempts);
  EXPECT_EQ(log[0].rounds_waited, sim.rounds_waited);
  // One gate round per epoch: the blocked span covers attempts + waits.
  EXPECT_EQ(log[0].evicted_epoch - log[0].first_blocked_epoch + 1,
            sim.attempts + sim.rounds_waited);
  EXPECT_EQ(log[0].evicted_epoch, evicted_at);

  // Eviction staged a departure (leaves counts it), so the next commit
  // rotates every key the straggler knew.
  const auto& counters = daemon.server().stats().counters;
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_GE(counters.leaves, 1u);
}

TEST(NetServer, PostAndOwnerCommitRunOnLoopThread) {
  ServerConfig config;
  config.allow_remote_commit = false;
  ServerThread daemon(config);

  Client member;
  member.connect("127.0.0.1", daemon.port());
  (void)member.hello(1);
  (void)member.join(workload::MemberClass::kShort);

  // Remote commits are refused under this config...
  member.send(make_empty(FrameType::kCommit));
  auto frame = member.next_frame();
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(parse_error(frame).code, FrameErrorCode::kRefused);

  // ...but the owning process can post one onto the loop thread.
  daemon.server().post([&daemon] { (void)daemon.server().commit_epoch(); });
  const auto rekey = member.wait_rekey();
  EXPECT_EQ(rekey.type, FrameType::kRekey);
}

}  // namespace
}  // namespace gk::net
