#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/rng.h"
#include "marks/seed_tree.h"

namespace gk::marks {
namespace {

TEST(Marks, SlotKeysAreDistinct) {
  MarksServer server(6, Rng(1));
  for (std::uint64_t a = 0; a < server.slot_count(); ++a)
    for (std::uint64_t b = a + 1; b < server.slot_count(); b += 7)
      EXPECT_NE(server.slot_key(a), server.slot_key(b)) << a << " vs " << b;
}

TEST(Marks, FullIntervalIsOneSeed) {
  MarksServer server(8, Rng(2));
  const auto grants = server.subscribe(0, server.slot_count() - 1);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].level, 0u);
}

TEST(Marks, SingleSlotIsOneLeafSeed) {
  MarksServer server(8, Rng(3));
  const auto grants = server.subscribe(100, 100);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].level, 8u);
  EXPECT_EQ(grants[0].index, 100u);
  EXPECT_EQ(grants[0].seed, server.slot_key(100));
}

TEST(Marks, CoverIsMinimalSized) {
  // Worst case for an interval in a tree of height h is 2(h-1) seeds.
  MarksServer server(10, Rng(4));
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = rng.uniform_u64(server.slot_count());
    const auto b = a + rng.uniform_u64(server.slot_count() - a);
    const auto grants = server.subscribe(a, b);
    EXPECT_LE(grants.size(), 2u * server.levels());
  }
}

TEST(Marks, SubscriberDerivesExactlyTheInterval) {
  MarksServer server(7, Rng(6));
  const std::uint64_t first = 37;
  const std::uint64_t last = 101;
  MarksSubscriber subscriber(server.subscribe(first, last), server.levels());

  for (std::uint64_t slot = 0; slot < server.slot_count(); ++slot) {
    const auto key = subscriber.key_for(slot);
    if (slot >= first && slot <= last) {
      ASSERT_TRUE(key.has_value()) << "slot " << slot;
      EXPECT_EQ(*key, server.slot_key(slot)) << "slot " << slot;
    } else {
      EXPECT_FALSE(key.has_value()) << "slot " << slot;
    }
  }
}

TEST(Marks, AdjacentSubscribersShareNoSeeds) {
  MarksServer server(6, Rng(7));
  const auto a = server.subscribe(0, 31);
  const auto b = server.subscribe(32, 63);
  for (const auto& ga : a)
    for (const auto& gb : b) EXPECT_FALSE(ga.level == gb.level && ga.index == gb.index);
}

TEST(Marks, ZeroMulticastCostForPlannedChurn) {
  // The MARKS property the paper contrasts with LKH: expiry-based
  // departures need no rekey message at all — each member simply stops
  // being able to derive the next slot's key.
  MarksServer server(5, Rng(8));
  MarksSubscriber early(server.subscribe(0, 15), server.levels());
  MarksSubscriber late(server.subscribe(16, 31), server.levels());
  EXPECT_TRUE(early.key_for(15).has_value());
  EXPECT_FALSE(early.key_for(16).has_value());  // expiry, no message sent
  EXPECT_TRUE(late.key_for(16).has_value());
  EXPECT_FALSE(late.key_for(15).has_value());  // no backward access either
}

TEST(Marks, OutOfRangeRejected) {
  MarksServer server(4, Rng(9));
  EXPECT_THROW((void)server.subscribe(3, 2), ContractViolation);
  EXPECT_THROW((void)server.subscribe(0, 16), ContractViolation);
  EXPECT_THROW((void)server.slot_key(16), ContractViolation);
  MarksSubscriber subscriber(server.subscribe(0, 3), server.levels());
  EXPECT_FALSE(subscriber.key_for(99).has_value());
}

TEST(Marks, GrantSizeLogarithmicInSessionLength) {
  // A member staying ~1/3 of the session needs O(levels) seeds no matter
  // how fine the slot resolution.
  for (unsigned levels : {8u, 12u, 16u, 20u}) {
    MarksServer server(levels, Rng(levels));
    const auto span = server.slot_count() / 3;
    const auto grants = server.subscribe(5, 5 + span);
    EXPECT_LE(grants.size(), 2u * levels) << "levels " << levels;
    EXPECT_GE(grants.size(), 2u) << "levels " << levels;
  }
}

}  // namespace
}  // namespace gk::marks
