#include <gtest/gtest.h>

#include "analytic/batch_cost.h"
#include "analytic/two_partition_model.h"
#include "analytic/wka_bkr_model.h"
#include "sim/interest.h"
#include "sim/partition_sim.h"
#include "sim/transport_sim.h"

namespace gk::sim {
namespace {

// --------------------------------------------------------- interests ----

TEST(InterestIndex, FindsWrapsByWrappingId) {
  Rng rng(1);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> payload;
  for (std::uint64_t i = 0; i < 10; ++i)
    payload.push_back(crypto::wrap_key(kek, crypto::make_key_id(i % 3 + 1), 0,
                                       crypto::Key128::random(rng),
                                       crypto::make_key_id(100 + i), 1, rng));
  const InterestIndex index(payload);
  const crypto::KeyId held[] = {crypto::make_key_id(1)};
  const auto interest = index.interest_of(held);
  // wrapping ids cycle 1,2,3,1,2,3,...: indices 0,3,6,9 carry id 1.
  EXPECT_EQ(interest, (std::vector<std::uint32_t>{0, 3, 6, 9}));
}

TEST(InterestIndex, UnknownIdsYieldNothing) {
  Rng rng(2);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> payload{
      crypto::wrap_key(kek, crypto::make_key_id(5), 0, crypto::Key128::random(rng),
                       crypto::make_key_id(6), 1, rng)};
  const InterestIndex index(payload);
  const crypto::KeyId held[] = {crypto::make_key_id(42)};
  EXPECT_TRUE(index.interest_of(held).empty());
}

// ----------------------------------------------- partition simulation ----

PartitionSimConfig small_config(partition::SchemeKind scheme) {
  PartitionSimConfig config;
  config.scheme = scheme;
  config.group_size = 512;
  config.s_period_epochs = 5;
  config.epochs = 15;
  config.warmup_epochs = 8;
  config.seed = 99;
  return config;
}

TEST(PartitionSim, InvariantsHoldUnderVerification) {
  for (const auto scheme :
       {partition::SchemeKind::kOneKeyTree, partition::SchemeKind::kQt,
        partition::SchemeKind::kTt, partition::SchemeKind::kPt}) {
    auto config = small_config(scheme);
    config.group_size = 128;
    config.epochs = 8;
    config.warmup_epochs = 4;
    config.verify_members = true;
    const auto result = run_partition_sim(config);
    EXPECT_TRUE(result.invariants_ok) << to_string(scheme);
    EXPECT_GT(result.members_checked, 0u) << to_string(scheme);
  }
}

TEST(PartitionSim, GroupSizeStaysNearTarget) {
  const auto result = run_partition_sim(small_config(partition::SchemeKind::kOneKeyTree));
  EXPECT_NEAR(result.group_size.mean(), 512.0, 90.0);
}

TEST(PartitionSim, JoinsBalanceLeavesInSteadyState) {
  const auto result = run_partition_sim(small_config(partition::SchemeKind::kTt));
  EXPECT_NEAR(result.joins_per_epoch.mean(), result.leaves_per_epoch.mean(),
              0.35 * result.joins_per_epoch.mean() + 2.0);
}

TEST(PartitionSim, MeasuredCostTracksAnalyticModel) {
  // The headline cross-validation the paper never ran: simulate the
  // one-keytree scheme and compare the measured per-epoch cost with
  // Appendix A's Ne(N, J) at the simulated operating point.
  auto config = small_config(partition::SchemeKind::kOneKeyTree);
  config.group_size = 2048;
  config.epochs = 25;
  config.warmup_epochs = 6;
  const auto result = run_partition_sim(config);

  const double n = result.group_size.mean();
  const double j = result.leaves_per_epoch.mean();
  const double model = analytic::batch_rekey_cost(n, j, config.degree);
  // Real trees are not perfectly balanced and joins add chain wraps the
  // leave-only model ignores; agreement within ~20% validates both sides.
  EXPECT_NEAR(result.cost_per_epoch.mean(), model, 0.20 * model);
}

TEST(PartitionSim, TtBeatsOneKeytreeAtPaperOperatingPoint) {
  // Fig. 3/4 by simulation instead of analysis, at reduced scale.
  auto base = small_config(partition::SchemeKind::kOneKeyTree);
  base.group_size = 2048;
  base.s_period_epochs = 10;
  base.epochs = 20;
  base.warmup_epochs = 14;
  const auto one = run_partition_sim(base);

  auto tt_config = base;
  tt_config.scheme = partition::SchemeKind::kTt;
  const auto tt = run_partition_sim(tt_config);

  EXPECT_LT(tt.cost_per_epoch.mean(), one.cost_per_epoch.mean());
}

TEST(PartitionSim, PtBeatsTt) {
  auto base = small_config(partition::SchemeKind::kTt);
  base.group_size = 2048;
  base.s_period_epochs = 10;
  base.epochs = 20;
  base.warmup_epochs = 14;
  const auto tt = run_partition_sim(base);

  auto pt_config = base;
  pt_config.scheme = partition::SchemeKind::kPt;
  const auto pt = run_partition_sim(pt_config);

  EXPECT_LT(pt.cost_per_epoch.mean(), tt.cost_per_epoch.mean() * 1.02);
}

// ----------------------------------------------- transport simulation ----

TransportSimConfig transport_config(TransportSimConfig::Organization org) {
  TransportSimConfig config;
  config.organization = org;
  config.group_size = 1024;
  config.departures_per_epoch = 8;
  config.epochs = 6;
  config.warmup_epochs = 1;
  config.seed = 7;
  return config;
}

TEST(TransportSim, DeliversEverythingOneTree) {
  const auto result =
      run_transport_sim(transport_config(TransportSimConfig::Organization::kOneTree));
  EXPECT_TRUE(result.all_delivered);
  EXPECT_GT(result.keys_per_epoch.mean(), 0.0);
  // Transport always costs at least the raw payload.
  EXPECT_GE(result.keys_per_epoch.mean(), result.payload_keys_per_epoch.mean() * 0.9);
}

TEST(TransportSim, LossHomogenizedBeatsOneTreeUnderWkaBkr) {
  // Section 4.3's claim, measured end-to-end rather than modelled. Averaged
  // over several epochs at alpha = 0.3.
  auto one = transport_config(TransportSimConfig::Organization::kOneTree);
  auto homog = transport_config(TransportSimConfig::Organization::kLossHomogenized);
  one.epochs = homog.epochs = 12;
  const auto one_result = run_transport_sim(one);
  const auto homog_result = run_transport_sim(homog);
  EXPECT_TRUE(one_result.all_delivered);
  EXPECT_TRUE(homog_result.all_delivered);
  EXPECT_LT(homog_result.keys_per_epoch.mean(), one_result.keys_per_epoch.mean());
}

TEST(TransportSim, FecProtocolDelivers) {
  auto config = transport_config(TransportSimConfig::Organization::kLossHomogenized);
  config.protocol = TransportSimConfig::Protocol::kProactiveFec;
  const auto result = run_transport_sim(config);
  EXPECT_TRUE(result.all_delivered);
}

TEST(TransportSim, MultiSendCostsMost) {
  auto wka = transport_config(TransportSimConfig::Organization::kOneTree);
  auto ms = wka;
  ms.protocol = TransportSimConfig::Protocol::kMultiSend;
  const auto wka_result = run_transport_sim(wka);
  const auto ms_result = run_transport_sim(ms);
  EXPECT_GT(ms_result.keys_per_epoch.mean(), wka_result.keys_per_epoch.mean());
}

}  // namespace
}  // namespace gk::sim
