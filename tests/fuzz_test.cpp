// Randomized differential testing: long adversarial op sequences checked
// against simple reference models, across several seeds (TEST_P).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/math.h"
#include "common/rng.h"
#include "lkh/key_queue.h"
#include "lkh/key_ring.h"
#include "lkh/key_tree.h"
#include "lkh/snapshot.h"
#include "netsim/receiver.h"
#include "partition/factory.h"
#include "partition/group_key.h"
#include "partition/journaled_server.h"
#include "replica/ship.h"
#include "replica/standby.h"

namespace gk {
namespace {

using workload::make_member_id;

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(1ULL, 1337ULL, 0xdeadbeefULL, 42424242ULL),
                         [](const ::testing::TestParamInfo<std::uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

TEST_P(Seeded, KeyTreeMatchesReferenceSetModel) {
  Rng rng(GetParam());
  lkh::KeyTree tree(2 + static_cast<unsigned>(rng.uniform_u64(4)), Rng(GetParam() + 1));
  std::set<std::uint64_t> reference;
  std::uint64_t next = 0;
  std::uint64_t epoch = 0;

  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.5 || reference.empty()) {
      tree.insert(make_member_id(next));
      reference.insert(next++);
    } else if (dice < 0.9) {
      // Remove a random present member.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.uniform_u64(reference.size())));
      tree.remove(make_member_id(*it));
      reference.erase(it);
    } else {
      (void)tree.commit(epoch++);
    }

    ASSERT_EQ(tree.size(), reference.size()) << "op " << op;
    if (op % 97 == 0) {
      for (const auto id : reference)
        ASSERT_TRUE(tree.contains(make_member_id(id))) << "op " << op;
      ASSERT_FALSE(tree.contains(make_member_id(next)));  // never inserted
    }
  }
  (void)tree.commit(epoch++);
  const auto stats = tree.stats();
  EXPECT_EQ(stats.member_count, reference.size());
  if (!reference.empty()) {
    EXPECT_LE(stats.height, tree_height(reference.size(), tree.degree()) + 2);
  }
}

TEST_P(Seeded, SnapshotAtRandomPointsIsFaithful) {
  Rng rng(GetParam() * 3 + 1);
  lkh::KeyTree tree(3, Rng(GetParam()));
  std::set<std::uint64_t> present;
  std::uint64_t next = 0;
  std::uint64_t epoch = 0;

  for (std::uint64_t round = 0; round < 6; ++round) {
    const auto churn = 5 + rng.uniform_u64(40);
    for (std::uint64_t c = 0; c < churn; ++c) {
      if (present.empty() || rng.bernoulli(0.6)) {
        tree.insert(make_member_id(next));
        present.insert(next++);
      } else {
        auto it = present.begin();
        std::advance(it, static_cast<long>(rng.uniform_u64(present.size())));
        tree.remove(make_member_id(*it));
        present.erase(it);
      }
    }
    (void)tree.commit(epoch++);

    const auto bytes = lkh::snapshot_tree(tree);
    auto restored = lkh::restore_tree(bytes, Rng(round));
    ASSERT_EQ(restored.size(), tree.size());
    for (const auto id : present) {
      ASSERT_TRUE(restored.contains(make_member_id(id)));
      ASSERT_EQ(restored.individual_key(make_member_id(id)),
                tree.individual_key(make_member_id(id)));
    }
    ASSERT_EQ(restored.root_key().key, tree.root_key().key);
  }
}

TEST_P(Seeded, KeyQueueMatchesReferenceMap) {
  Rng rng(GetParam() * 7 + 3);
  lkh::KeyQueue queue{Rng(GetParam())};
  std::map<std::uint64_t, crypto::Key128> reference;
  std::uint64_t next = 0;

  for (int op = 0; op < 2000; ++op) {
    if (reference.empty() || rng.bernoulli(0.55)) {
      const auto grant = queue.insert(make_member_id(next));
      reference.emplace(next++, grant.individual_key);
    } else {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.uniform_u64(reference.size())));
      queue.remove(make_member_id(it->first));
      reference.erase(it);
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
  for (const auto& [id, key] : reference)
    ASSERT_EQ(queue.individual_key(make_member_id(id)), key);
}

TEST_P(Seeded, GroupKeyManagerChainsAreFollowable) {
  auto ids = lkh::IdAllocator::create();
  partition::GroupKeyManager dek(Rng(GetParam()), ids);
  Rng rng(GetParam() + 9);

  // A member that starts holding version v can follow any number of
  // previous-wrap rotations, and never regresses.
  const auto kek = crypto::Key128::random(rng);
  const auto kek_id = ids->next();
  lkh::RekeyMessage bootstrap;
  dek.wrap_under(kek, kek_id, 0, bootstrap);

  lkh::KeyRing ring(make_member_id(1), kek_id, kek);
  ring.process(bootstrap);
  ASSERT_TRUE(ring.holds(dek.id(), dek.current().version));

  for (int i = 0; i < 50; ++i) {
    lkh::RekeyMessage step;
    dek.rotate();
    dek.wrap_under_previous(step);
    ring.process(step);
    ASSERT_TRUE(ring.holds(dek.id(), dek.current().version)) << "rotation " << i;
  }
}

// A standby fed a randomly torn, bit-flipped, or completely garbled ship
// stream must either apply frames verbatim or cleanly request checkpoint
// catch-up — never silently apply damaged bytes. After every commit, once a
// clean checkpoint heals the stream, the standby must be byte-identical to
// the leader; divergence would also trip the ContractViolation paths
// (grant/epoch/digest mismatch), which this fuzz must never reach.
TEST_P(Seeded, ShippedStreamDamageNeverCorruptsStandby) {
  Rng rng(GetParam() ^ 0x5817f00dULL);
  partition::SchemeConfig scheme_config;
  scheme_config.degree = 3;
  auto factory = [&] {
    return partition::make_server("one-tree", scheme_config, Rng(GetParam()));
  };
  partition::JournaledServer::Config journal_config;
  journal_config.checkpoint_every = 3;
  partition::JournaledServer leader(factory(), journal_config);
  leader.set_term(1);
  replica::StandbyReplica standby(1, factory());
  const replica::JournalShipper shipper(leader);

  const auto offer_damaged = [&](std::vector<std::uint8_t> bytes) {
    const double dice = rng.uniform();
    if (dice < 0.4 && bytes.size() > 1) {
      bytes.resize(1 + rng.uniform_u64(bytes.size() - 1));  // torn
    } else if (dice < 0.8) {
      const auto bit = rng.uniform_u64(bytes.size() * 8);  // flipped
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    } else {
      bytes.assign(4 + rng.uniform_u64(60), static_cast<std::uint8_t>(rng())); // garbage
    }
    // Damage must never look applicable; the digest (or framing) refuses it.
    ASSERT_EQ(standby.offer(bytes), replica::StandbyReplica::Offer::kNeedCheckpoint);
  };
  const auto ship_clean = [&] {
    while (const auto frame = shipper.next_frame(standby.cursor())) {
      const auto offer = standby.offer(replica::encode_frame(*frame));
      if (offer == replica::StandbyReplica::Offer::kNeedCheckpoint)
        ASSERT_EQ(standby.offer(replica::encode_frame(shipper.checkpoint_frame())),
                  replica::StandbyReplica::Offer::kApplied);
      else
        ASSERT_EQ(offer, replica::StandbyReplica::Offer::kApplied);
    }
  };

  std::vector<std::uint64_t> present;
  std::uint64_t next_id = 1;
  for (std::uint64_t epoch = 0; epoch < 40; ++epoch) {
    const auto joins = 1 + rng.uniform_u64(3);
    for (std::uint64_t j = 0; j < joins; ++j) {
      workload::MemberProfile profile;
      profile.id = make_member_id(next_id);
      profile.member_class = workload::MemberClass::kShort;
      profile.join_time = static_cast<double>(epoch);
      profile.duration = 4.0;
      profile.loss_rate = 0.0;
      (void)leader.join(profile);
      present.push_back(next_id++);
      if (const auto frame = shipper.next_frame(standby.cursor());
          frame && rng.bernoulli(0.5))
        offer_damaged(replica::encode_frame(*frame));
      ship_clean();
    }
    while (present.size() > 6 && rng.bernoulli(0.3)) {
      const auto pick = rng.uniform_u64(present.size());
      leader.leave(make_member_id(present[pick]));
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    (void)leader.end_epoch();
    if (const auto frame = shipper.next_frame(standby.cursor());
        frame && rng.bernoulli(0.5))
      offer_damaged(replica::encode_frame(*frame));
    ship_clean();
    ASSERT_EQ(standby.state_bytes(), leader.durable().save_state())
        << "diverged after epoch " << epoch;
  }
  EXPECT_GT(standby.stats().corrupt_frames + standby.stats().gap_frames, 0u);
  // Compaction epochs write their digest to the stream the checkpoint then
  // discards, so the standby sees roughly (1 - 1/checkpoint_every) of them;
  // the checkpoint frame itself verifies byte-identity on those epochs.
  EXPECT_GT(standby.stats().digest_checks, 20u);
}

TEST_P(Seeded, ReceiverObservedLossConverges) {
  Rng rng(GetParam() + 77);
  const double loss = 0.05 + rng.uniform() * 0.3;
  netsim::Receiver receiver(make_member_id(1), loss, rng.fork());
  for (int i = 0; i < 200000; ++i) (void)receiver.receives();
  EXPECT_NEAR(receiver.observed_loss(), loss, 0.01);
  EXPECT_EQ(receiver.packets_offered(), 200000u);
}

}  // namespace
}  // namespace gk
