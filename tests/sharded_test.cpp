// ShardedRekeyCore properties: the MPSC staging queue, S=1 factory
// passthrough, thread-count independence of sharded emission (the
// byte-identity contract), staged-vs-synchronous op equivalence, snapshot
// round-trips, journal crash recovery, and replica journal shipping — all
// over 100+ epoch randomized schedules.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ensure.h"
#include "common/mpsc_queue.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/sharded_core.h"
#include "partition/factory.h"
#include "partition/journaled_server.h"
#include "replica/ship.h"
#include "replica/standby.h"
#include "wire/error.h"
#include "workload/member.h"

namespace gk {
namespace {

// ----------------------------------------------------------- MPSC queue --

TEST(MpscQueue, SingleProducerIsFifo) {
  common::MpscQueue<int> queue;
  EXPECT_TRUE(queue.approx_empty());
  EXPECT_FALSE(queue.try_pop().has_value());

  for (int i = 0; i < 100; ++i) queue.push(i);
  EXPECT_FALSE(queue.approx_empty());
  for (int i = 0; i < 100; ++i) {
    const auto value = queue.try_pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_TRUE(queue.approx_empty());
  EXPECT_FALSE(queue.try_pop().has_value());

  // Interleaved push/pop keeps working after the stub cycles through.
  for (int round = 0; round < 50; ++round) {
    queue.push(round);
    const auto value = queue.try_pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, round);
    EXPECT_TRUE(queue.approx_empty());
  }
}

TEST(MpscQueue, MoveOnlyValuesSurvive) {
  common::MpscQueue<std::unique_ptr<int>> queue;
  queue.push(std::make_unique<int>(7));
  queue.push(std::make_unique<int>(8));
  auto first = queue.try_pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(**first, 7);
  auto second = queue.try_pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(**second, 8);
  // Destruction with unconsumed nodes must not leak (ASan would flag it).
  queue.push(std::make_unique<int>(9));
}

// ------------------------------------------------------------- fixtures --

workload::MemberProfile profile_of(std::uint64_t id, Rng& rng) {
  workload::MemberProfile profile;
  profile.id = workload::make_member_id(id);
  profile.member_class = rng.bernoulli(0.6) ? workload::MemberClass::kShort
                                            : workload::MemberClass::kLong;
  profile.duration = profile.member_class == workload::MemberClass::kShort ? 30.0 : 900.0;
  return profile;
}

void expect_identical(const lkh::RekeyMessage& a, const lkh::RekeyMessage& b,
                      std::uint64_t epoch) {
  ASSERT_EQ(a.epoch, b.epoch) << "epoch " << epoch;
  ASSERT_EQ(a.group_key_id, b.group_key_id) << "epoch " << epoch;
  ASSERT_EQ(a.group_key_version, b.group_key_version) << "epoch " << epoch;
  ASSERT_EQ(a.wraps.size(), b.wraps.size()) << "epoch " << epoch;
  for (std::size_t w = 0; w < a.wraps.size(); ++w) {
    ASSERT_EQ(a.wraps[w].target_id, b.wraps[w].target_id) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].target_version, b.wraps[w].target_version) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].wrapping_id, b.wraps[w].wrapping_id) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].wrapping_version, b.wraps[w].wrapping_version)
        << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].nonce, b.wraps[w].nonce) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].ciphertext, b.wraps[w].ciphertext) << epoch << ":" << w;
    ASSERT_EQ(a.wraps[w].tag, b.wraps[w].tag) << epoch << ":" << w;
  }
}

constexpr const char* kShardableSchemes[] = {"one-tree", "qt", "tt", "pt"};

partition::SchemeConfig scheme_config() {
  partition::SchemeConfig config;
  config.degree = 3;
  config.s_period_epochs = 4;
  return config;
}

std::unique_ptr<engine::DurableRekeyServer> make_sharded(const std::string& scheme,
                                                         unsigned shards,
                                                         std::uint64_t seed) {
  return partition::make_sharded_server(scheme, scheme_config(), shards, Rng(seed));
}

/// One schedule step applied to N lockstep servers: a few joins, a few
/// leaves, then end_epoch on each. Caller compares the outputs.
struct LockstepSchedule {
  Rng rng;
  std::vector<std::uint64_t> present;
  std::uint64_t next = 0;

  explicit LockstepSchedule(std::uint64_t seed) : rng(seed) {}

  template <typename JoinFn, typename LeaveFn>
  void step(JoinFn&& do_join, LeaveFn&& do_leave) {
    const std::uint64_t joins = rng.uniform_u64(6);
    for (std::uint64_t j = 0; j < joins; ++j) {
      do_join(profile_of(next, rng));
      present.push_back(next++);
    }
    const std::uint64_t leaves =
        present.empty()
            ? 0
            : rng.uniform_u64(std::min<std::uint64_t>(4, present.size() + 1));
    for (std::uint64_t l = 0; l < leaves; ++l) {
      const auto victim = rng.uniform_u64(present.size());
      do_leave(workload::make_member_id(present[victim]));
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
};

// ------------------------------------------------- factory passthrough --

TEST(ShardedFactory, SingleShardIsTheUnshardedServerByteForByte) {
  // shards <= 1 must not change anything: the factory returns a plain
  // CoreServer whose whole life is byte-identical to make_server's.
  for (const auto* scheme : kShardableSchemes) {
    auto plain = partition::make_server(scheme, scheme_config(), Rng(42));
    auto sharded = make_sharded(scheme, 1, 42);

    LockstepSchedule schedule(7);
    for (std::uint64_t epoch = 0; epoch < 40; ++epoch) {
      schedule.step(
          [&](const workload::MemberProfile& profile) {
            const auto reg_a = plain->join(profile);
            const auto reg_b = sharded->join(profile);
            ASSERT_EQ(reg_a.individual_key, reg_b.individual_key);
            ASSERT_EQ(reg_a.leaf_id, reg_b.leaf_id);
          },
          [&](workload::MemberId member) {
            plain->leave(member);
            sharded->leave(member);
          });
      const auto out_a = plain->end_epoch();
      const auto out_b = sharded->end_epoch();
      expect_identical(out_a.message, out_b.message, epoch);
      ASSERT_EQ(plain->group_key().key, sharded->group_key().key) << scheme;
    }
    EXPECT_EQ(plain->save_state(), sharded->save_state()) << scheme;
  }
}

TEST(ShardedFactory, RejectsSchemesWithoutIdBaseSupport) {
  // loss-bin ignores SchemeConfig::id_base; the factory must refuse to
  // shard it rather than silently collide key ids across shards.
  EXPECT_THROW((void)partition::make_sharded_server("loss-bin", scheme_config(), 4,
                                                    Rng(1)),
               ContractViolation);
}

// -------------------------------------- emission thread independence --

TEST(ShardedCore, ParallelEmissionByteIdenticalToSequential) {
  // The tentpole's determinism contract: with S=4 shards, commit bytes are
  // independent of thread count. Twin servers run the same 120-epoch
  // randomized schedule — one committing sequentially, one across a
  // 4-thread pool — and every epoch must match byte for byte. 120 epochs
  // at K=4 exercises the S->L migration path many times per scheme.
  common::ThreadPool pool(4);
  for (const auto* scheme : kShardableSchemes) {
    auto sequential = make_sharded(scheme, 4, 99);
    auto parallel = make_sharded(scheme, 4, 99);
    parallel->set_executor(&pool);

    LockstepSchedule schedule(0xabcd);
    for (std::uint64_t epoch = 0; epoch < 120; ++epoch) {
      schedule.step(
          [&](const workload::MemberProfile& profile) {
            const auto reg_a = sequential->join(profile);
            const auto reg_b = parallel->join(profile);
            ASSERT_EQ(reg_a.individual_key, reg_b.individual_key);
            ASSERT_EQ(reg_a.leaf_id, reg_b.leaf_id);
          },
          [&](workload::MemberId member) {
            sequential->leave(member);
            parallel->leave(member);
          });
      const auto out_a = sequential->end_epoch();
      const auto out_b = parallel->end_epoch();
      ASSERT_EQ(out_a.migrations, out_b.migrations);
      ASSERT_EQ(out_a.joins, out_b.joins);
      expect_identical(out_a.message, out_b.message, epoch);
      ASSERT_EQ(sequential->group_key().key, parallel->group_key().key)
          << scheme << " epoch " << epoch;
    }
    // Post-run state must agree too (arenas, RNG streams, caches aside —
    // save_state captures everything behaviour depends on).
    EXPECT_EQ(sequential->save_state(), parallel->save_state()) << scheme;
  }
}

TEST(ShardedCore, MemberPathIncludesTopDekAndRoutesStably) {
  auto server = make_sharded("one-tree", 4, 5);
  auto* sharded = dynamic_cast<engine::ShardedRekeyCore*>(server.get());
  ASSERT_NE(sharded, nullptr);

  Rng rng(3);
  for (std::uint64_t m = 0; m < 64; ++m) (void)server->join(profile_of(m, rng));
  (void)server->end_epoch();

  for (std::uint64_t m = 0; m < 64; ++m) {
    const auto id = workload::make_member_id(m);
    const auto path = server->member_path(id);
    ASSERT_FALSE(path.empty());
    // The DEK terminates every member's path, whatever its home shard.
    EXPECT_EQ(path.back(), server->group_key_id());
    const auto keys = server->member_path_keys(id);
    ASSERT_EQ(keys.back().id, server->group_key_id());
    EXPECT_EQ(keys.back().key, server->group_key());
    // Routing is a pure function of the id: stable across queries.
    EXPECT_EQ(sharded->shard_of(id), sharded->shard_of(id));
    EXPECT_LT(sharded->shard_of(id), sharded->shard_count());
  }
}

// -------------------------------------------------- staged ingestion --

TEST(ShardedCore, StagedMutationsMatchSynchronousOps) {
  // One producer staging through the MPSC queue must commit exactly what
  // the same ops applied synchronously commit: drain order is push order.
  for (const auto* scheme : kShardableSchemes) {
    auto sync_server = make_sharded(scheme, 4, 21);
    auto staged_server = make_sharded(scheme, 4, 21);
    auto* staged = dynamic_cast<engine::ShardedRekeyCore*>(staged_server.get());
    ASSERT_NE(staged, nullptr);

    LockstepSchedule schedule(0x57a6ed);
    for (std::uint64_t epoch = 0; epoch < 60; ++epoch) {
      std::vector<engine::Registration> sync_regs;
      std::vector<workload::MemberId> joined;
      std::vector<workload::MemberId> left;
      schedule.step(
          [&](const workload::MemberProfile& profile) {
            sync_regs.push_back(sync_server->join(profile));
            staged->stage_join(profile);
            joined.push_back(profile.id);
          },
          [&](workload::MemberId member) {
            sync_server->leave(member);
            staged->stage_leave(member);
            left.push_back(member);
          });
      const auto out_a = sync_server->end_epoch();
      const auto out_b = staged_server->end_epoch();
      expect_identical(out_a.message, out_b.message, epoch);

      // Queue-granted admissions carry the same registrations the sync
      // twin handed out at call time.
      const auto& admissions = staged->last_admissions();
      ASSERT_EQ(admissions.size(), sync_regs.size()) << "epoch " << epoch;
      for (std::size_t j = 0; j < admissions.size(); ++j) {
        EXPECT_EQ(admissions[j].member, joined[j]);
        EXPECT_EQ(admissions[j].registration.individual_key,
                  sync_regs[j].individual_key);
        EXPECT_EQ(admissions[j].registration.leaf_id, sync_regs[j].leaf_id);
      }
      ASSERT_EQ(staged->last_evictions().size(), left.size());
      for (std::size_t l = 0; l < left.size(); ++l)
        EXPECT_EQ(staged->last_evictions()[l], left[l]);
    }
  }
}

// ------------------------------------------------------ save / restore --

TEST(ShardedCore, SnapshotRoundTripContinuesInLockstep) {
  auto original = make_sharded("qt", 4, 77);
  LockstepSchedule schedule(0xcafe);
  for (std::uint64_t epoch = 0; epoch < 50; ++epoch) {
    schedule.step([&](const workload::MemberProfile& p) { (void)original->join(p); },
                  [&](workload::MemberId m) { original->leave(m); });
    (void)original->end_epoch();
  }

  const auto bytes = original->save_state();
  auto restored = make_sharded("qt", 4, 1);  // different seed: state replaced
  restored->restore_state(bytes);
  EXPECT_EQ(restored->epoch(), original->epoch());
  EXPECT_EQ(restored->group_key().key, original->group_key().key);
  EXPECT_EQ(restored->save_state(), bytes);

  // The restored server's future is byte-identical — RNG streams included.
  for (std::uint64_t epoch = 0; epoch < 30; ++epoch) {
    schedule.step(
        [&](const workload::MemberProfile& profile) {
          const auto reg_a = original->join(profile);
          const auto reg_b = restored->join(profile);
          ASSERT_EQ(reg_a.individual_key, reg_b.individual_key);
        },
        [&](workload::MemberId member) {
          original->leave(member);
          restored->leave(member);
        });
    const auto out_a = original->end_epoch();
    const auto out_b = restored->end_epoch();
    expect_identical(out_a.message, out_b.message, out_a.epoch);
  }
}

TEST(ShardedCore, SnapshotRejectsWrongShardCountAndScheme) {
  auto four = make_sharded("one-tree", 4, 1);
  (void)four->end_epoch();
  const auto bytes = four->save_state();

  auto two = make_sharded("one-tree", 2, 1);
  EXPECT_THROW(two->restore_state(bytes), ContractViolation);
  auto other = make_sharded("qt", 4, 1);
  EXPECT_THROW(other->restore_state(bytes), wire::WireError);
}

// ------------------------------------------------------ crash recovery --

TEST(ShardedCrashRecovery, JournalReplayRegeneratesInterruptedEpoch) {
  // The WAL guarantee must survive sharding: after 100+ epochs of churn, a
  // crash between COMMIT_BEGIN and the in-memory commit recovers to a
  // server whose re-run epoch — and whole future — is byte-identical.
  common::ThreadPool pool(3);
  auto make = [] { return make_sharded("tt", 4, 1234); };
  partition::JournaledServer::Config config;
  config.checkpoint_every = 16;
  partition::JournaledServer twin(make(), config);
  partition::JournaledServer victim(make(), config);
  victim.set_executor(&pool);  // determinism is scheduling-independent

  LockstepSchedule schedule(0xdead);
  for (std::uint64_t epoch = 0; epoch < 105; ++epoch) {
    schedule.step(
        [&](const workload::MemberProfile& profile) {
          (void)twin.join(profile);
          (void)victim.join(profile);
        },
        [&](workload::MemberId member) {
          twin.leave(member);
          victim.leave(member);
        });
    const auto out_a = twin.end_epoch();
    const auto out_b = victim.end_epoch();
    expect_identical(out_a.message, out_b.message, epoch);
  }

  schedule.step(
      [&](const workload::MemberProfile& profile) {
        (void)twin.join(profile);
        (void)victim.join(profile);
      },
      [&](workload::MemberId member) {
        twin.leave(member);
        victim.leave(member);
      });
  const auto expected = twin.end_epoch();
  victim.arm_crash_before_commit();
  EXPECT_THROW((void)victim.end_epoch(), partition::ServerCrashed);

  auto recovery = partition::JournaledServer::recover(victim.journal_bytes(), make(),
                                                      config);
  ASSERT_TRUE(recovery.pending.has_value());
  expect_identical(recovery.pending->message, expected.message, expected.epoch);

  // Still in lockstep afterwards, executor reattached.
  recovery.server->set_executor(&pool);
  for (std::uint64_t epoch = 0; epoch < 5; ++epoch) {
    schedule.step(
        [&](const workload::MemberProfile& profile) {
          (void)twin.join(profile);
          (void)recovery.server->join(profile);
        },
        [&](workload::MemberId member) {
          twin.leave(member);
          recovery.server->leave(member);
        });
    const auto out_a = twin.end_epoch();
    const auto out_b = recovery.server->end_epoch();
    expect_identical(out_a.message, out_b.message, out_a.epoch);
  }
}

// ----------------------------------------------------- replica shipping --

TEST(ShardedReplica, StandbyFollowsShardedLeaderByteIdentically) {
  // Journal shipping replays the leader's ops into a blank sharded server;
  // the standby's full state must equal the leader's after every shipped
  // commit, across 100 epochs of churn.
  auto make = [] { return make_sharded("qt", 4, 31); };
  partition::JournaledServer::Config config;
  config.checkpoint_every = 8;
  partition::JournaledServer leader(make(), config);
  leader.set_term(1);
  replica::StandbyReplica standby(1, make());

  const auto sync = [&] {
    const replica::JournalShipper shipper(leader);
    while (const auto frame = shipper.next_frame(standby.cursor())) {
      const auto offer = standby.offer(replica::encode_frame(*frame));
      ASSERT_NE(offer, replica::StandbyReplica::Offer::kRejectedStale);
      if (offer == replica::StandbyReplica::Offer::kNeedCheckpoint) {
        ASSERT_EQ(standby.offer(replica::encode_frame(shipper.checkpoint_frame())),
                  replica::StandbyReplica::Offer::kApplied);
      }
    }
  };
  sync();

  LockstepSchedule schedule(0xbeef);
  for (std::uint64_t epoch = 0; epoch < 100; ++epoch) {
    schedule.step([&](const workload::MemberProfile& p) { (void)leader.join(p); },
                  [&](workload::MemberId m) { leader.leave(m); });
    (void)leader.end_epoch();
    sync();
    if (epoch % 10 == 9) {
      ASSERT_EQ(standby.state_bytes(), leader.durable().save_state())
          << "diverged after epoch " << epoch;
    }
  }
  EXPECT_EQ(standby.applied_epoch(), leader.durable().epoch());
  EXPECT_EQ(standby.state_bytes(), leader.durable().save_state());
  // Checkpoint catch-ups skip the compacted tail's 'D' records, so the
  // standby verifies most — not all — of the 100 per-commit digests.
  EXPECT_GE(standby.stats().digest_checks, 50u);
}

}  // namespace
}  // namespace gk
