#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "crypto/secure.h"
#include "crypto/sha256.h"

namespace gk::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// -------------------------------------------------------------- SHA-256 ----

TEST(Sha256, EmptyInputVector) {
  const auto digest = sha256({});
  EXPECT_EQ(to_hex(digest),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  const auto data = bytes_of("abc");
  EXPECT_EQ(to_hex(sha256(data)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  const auto data = bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(to_hex(sha256(data)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Rng rng(99);
  std::vector<std::uint8_t> data(1237);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const auto oneshot = sha256(data);

  Sha256 h;
  std::size_t offset = 0;
  for (std::size_t step : {1u, 63u, 64u, 65u, 500u, 544u}) {
    h.update(std::span<const std::uint8_t>(data.data() + offset, step));
    offset += step;
  }
  h.update(std::span<const std::uint8_t>(data.data() + offset, data.size() - offset));
  EXPECT_EQ(to_hex(h.finish()), to_hex(oneshot));
}

// ----------------------------------------------------------------- HMAC ----

TEST(Hmac, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto key = bytes_of("Jefe");
  const auto mac = hmac_sha256(key, bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  std::vector<std::uint8_t> key(20, 0xaa);
  std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  std::vector<std::uint8_t> key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, ConstantTimeEqual) {
  const std::array<std::uint8_t, 4> a{1, 2, 3, 4};
  const std::array<std::uint8_t, 4> b{1, 2, 3, 4};
  const std::array<std::uint8_t, 4> c{1, 2, 3, 5};
  const std::array<std::uint8_t, 3> shorter{1, 2, 3};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(std::span<const std::uint8_t>(a),
                                   std::span<const std::uint8_t>(shorter)));
}

// ------------------------------------------------------------- ChaCha20 ----

TEST(ChaCha20, Rfc8439EncryptionVector) {
  std::array<std::uint8_t, 32> key;
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  const std::array<std::uint8_t, 12> nonce{0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                           0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";

  ChaCha20 cipher(key, nonce, 1);
  const auto ciphertext = cipher.crypt_copy(bytes_of(plaintext));
  EXPECT_EQ(to_hex(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, RoundTrip) {
  Rng rng(1);
  std::array<std::uint8_t, 32> key;
  std::array<std::uint8_t, 12> nonce;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng());

  std::vector<std::uint8_t> message(333);
  for (auto& b : message) b = static_cast<std::uint8_t>(rng());

  ChaCha20 enc(key, nonce);
  auto ciphertext = enc.crypt_copy(message);
  EXPECT_NE(ciphertext, message);

  ChaCha20 dec(key, nonce);
  EXPECT_EQ(dec.crypt_copy(ciphertext), message);
}

TEST(ChaCha20, DifferentNoncesProduceDifferentStreams) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce_a{};
  std::array<std::uint8_t, 12> nonce_b{};
  nonce_b[0] = 1;
  std::vector<std::uint8_t> zeros(64, 0);
  ChaCha20 a(key, nonce_a);
  ChaCha20 b(key, nonce_b);
  EXPECT_NE(a.crypt_copy(zeros), b.crypt_copy(zeros));
}

// ------------------------------------------------------------------ Key ----

TEST(Key128, RandomKeysDiffer) {
  Rng rng(5);
  const auto a = Key128::random(rng);
  const auto b = Key128::random(rng);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.is_zero());
}

TEST(Key128, DefaultIsZero) {
  Key128 k;
  EXPECT_TRUE(k.is_zero());
  EXPECT_EQ(k.hex_full(), "00000000000000000000000000000000");
}

TEST(Key128, HexIsRedactedByDefault) {
  std::array<std::uint8_t, Key128::kSize> bytes{};
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>(0xa0 + i);
  const Key128 k(bytes);
  EXPECT_EQ(k.hex(), "a0a1a2a3…");                          // first 4 bytes only
  EXPECT_EQ(k.hex_full(), "a0a1a2a3a4a5a6a7a8a9aaabacadaeaf");  // explicit escape hatch
}

TEST(Key128, EqualityIsConstantTimeCtEqual) {
  Rng rng(7);
  const auto a = Key128::random(rng);
  const auto b = Key128::random(rng);
  Key128 a2 = a;
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_TRUE(ct_equal(a.bytes(), a2.bytes()));
  EXPECT_FALSE(ct_equal(a.bytes(), b.bytes()));
}

TEST(Key128, DestructorWipesKeyMaterial) {
  Rng rng(8);
  alignas(Key128) std::array<unsigned char, sizeof(Key128)> storage;
  auto* k = new (storage.data()) Key128(Key128::random(rng));
  ASSERT_FALSE(k->is_zero());
  k->~Key128();
  // Inspect the raw storage the key lived in: every byte must be zero.
  for (std::size_t i = 0; i < storage.size(); ++i)
    EXPECT_EQ(storage[i], 0u) << "byte " << i << " survived destruction";
}

TEST(Key128, VersionedKeyEqualityChecksKeyAndVersion) {
  Rng rng(9);
  const VersionedKey a{Key128::random(rng), 3};
  VersionedKey same = a;
  VersionedKey bumped = a;
  bumped.version = 4;
  const VersionedKey other{Key128::random(rng), 3};
  EXPECT_EQ(a, same);
  EXPECT_NE(a, bumped);
  EXPECT_NE(a, other);
}

TEST(Key128, HashDistinguishesKeys) {
  Rng rng(6);
  const auto a = Key128::random(rng);
  const auto b = Key128::random(rng);
  EXPECT_NE(std::hash<Key128>{}(a), std::hash<Key128>{}(b));
}

// -------------------------------------------------------------- KeyWrap ----

TEST(KeyWrap, RoundTrip) {
  Rng rng(10);
  const auto kek = Key128::random(rng);
  const auto payload = Key128::random(rng);
  const auto wrapped =
      wrap_key(kek, make_key_id(7), 3, payload, make_key_id(9), 5, rng);
  EXPECT_EQ(raw(wrapped.target_id), 9u);
  EXPECT_EQ(wrapped.target_version, 5u);
  EXPECT_EQ(raw(wrapped.wrapping_id), 7u);
  EXPECT_EQ(wrapped.wrapping_version, 3u);

  const auto unwrapped = unwrap_key(kek, wrapped);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(*unwrapped, payload);
}

TEST(KeyWrap, WrongKekFails) {
  Rng rng(11);
  const auto kek = Key128::random(rng);
  const auto wrong = Key128::random(rng);
  const auto payload = Key128::random(rng);
  const auto wrapped =
      wrap_key(kek, make_key_id(1), 0, payload, make_key_id(2), 1, rng);
  EXPECT_FALSE(unwrap_key(wrong, wrapped).has_value());
}

TEST(KeyWrap, TamperedCiphertextFails) {
  Rng rng(12);
  const auto kek = Key128::random(rng);
  const auto payload = Key128::random(rng);
  auto wrapped = wrap_key(kek, make_key_id(1), 0, payload, make_key_id(2), 1, rng);
  wrapped.ciphertext[0] ^= 0x01;
  EXPECT_FALSE(unwrap_key(kek, wrapped).has_value());
}

TEST(KeyWrap, TamperedMetadataFails) {
  Rng rng(13);
  const auto kek = Key128::random(rng);
  const auto payload = Key128::random(rng);
  auto wrapped = wrap_key(kek, make_key_id(1), 0, payload, make_key_id(2), 1, rng);
  wrapped.target_version = 99;  // metadata is authenticated
  EXPECT_FALSE(unwrap_key(kek, wrapped).has_value());
}

TEST(KeyWrap, NoncesAreFresh) {
  Rng rng(14);
  const auto kek = Key128::random(rng);
  const auto payload = Key128::random(rng);
  const auto w1 = wrap_key(kek, make_key_id(1), 0, payload, make_key_id(2), 1, rng);
  const auto w2 = wrap_key(kek, make_key_id(1), 0, payload, make_key_id(2), 1, rng);
  EXPECT_NE(w1.nonce, w2.nonce);
  EXPECT_NE(w1.ciphertext, w2.ciphertext);
}

// ------------------------------------------------------------------ KDF ----

TEST(Kdf, DeterministicAndLabelSeparated) {
  Rng rng(15);
  const auto key = Key128::random(rng);
  EXPECT_EQ(derive_key(key, "a", 1), derive_key(key, "a", 1));
  EXPECT_NE(derive_key(key, "a", 1), derive_key(key, "b", 1));
  EXPECT_NE(derive_key(key, "a", 1), derive_key(key, "a", 2));
}

TEST(Kdf, OftBlindIsOneWayStyle) {
  Rng rng(16);
  const auto key = Key128::random(rng);
  const auto blinded = oft_blind(key);
  EXPECT_NE(blinded, key);
  EXPECT_EQ(oft_blind(key), blinded);  // deterministic
}

TEST(Kdf, OftMixIsCommutative) {
  Rng rng(17);
  const auto a = oft_blind(Key128::random(rng));
  const auto b = oft_blind(Key128::random(rng));
  EXPECT_EQ(oft_mix(a, b), oft_mix(b, a));
  EXPECT_NE(oft_mix(a, b), oft_mix(a, a));
}

}  // namespace
}  // namespace gk::crypto
