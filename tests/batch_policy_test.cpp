// Cross-checks for the BatchPolicy smoke scheme (DESIGN.md §9's "how to
// add a policy" walkthrough): identical workloads must cost the same as
// OneTreePolicy whenever batching cannot help (join-only and leave-only
// epochs), and mixed churn must stay structurally consistent even though
// deferred deletions forfeit same-epoch slot reuse.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "partition/factory.h"

namespace gk::partition {
namespace {

using workload::make_member_id;

workload::MemberProfile profile_of(std::uint64_t id) {
  workload::MemberProfile p;
  p.id = make_member_id(id);
  return p;
}

std::unique_ptr<engine::CoreServer> server_of(const char* scheme, unsigned degree,
                                              std::uint64_t seed) {
  SchemeConfig config;
  config.degree = degree;
  return make_server(scheme, config, Rng(seed));
}

TEST(BatchPolicy, IsRegisteredAndNotDurable) {
  const auto names = registered_policies();
  ASSERT_NE(std::find(names.begin(), names.end(), "batch"), names.end());
  auto server = server_of("batch", 3, 1);
  EXPECT_EQ(server->core().policy().info().name, "batch");
  EXPECT_FALSE(server->core().policy().info().durable);
  EXPECT_FALSE(server->core().policy().info().split_partitions);
}

TEST(BatchPolicy, JoinOnlyEpochsMatchOneTreeExactly) {
  // Same degree, same seed: greedy shallowest-vacancy insertion is the
  // same rule in both policies, so join-only epochs are byte-for-byte
  // equivalent — group keys included.
  for (const unsigned degree : {2u, 3u, 4u}) {
    auto batch = server_of("batch", degree, 0xb47c4);
    auto one = server_of("one-tree", degree, 0xb47c4);
    std::uint64_t next = 0;
    for (int epoch = 0; epoch < 6; ++epoch) {
      for (int j = 0; j < 7; ++j, ++next) {
        (void)batch->join(profile_of(next));
        (void)one->join(profile_of(next));
      }
      const auto out_batch = batch->end_epoch();
      const auto out_one = one->end_epoch();
      EXPECT_EQ(out_batch.message.cost(), out_one.message.cost())
          << "degree " << degree << " epoch " << epoch;
      EXPECT_EQ(batch->size(), one->size());
      EXPECT_EQ(batch->group_key().key, one->group_key().key)
          << "degree " << degree << " epoch " << epoch;
    }
  }
}

TEST(BatchPolicy, LeaveOnlyEpochsMatchOneTreeCosts) {
  // Deletion order inside one epoch differs (swap-pop drains the pending
  // list back-to-front), but the dirty path set — and therefore the
  // commit cost — is order-independent.
  auto batch = server_of("batch", 3, 0xdead);
  auto one = server_of("one-tree", 3, 0xdead);
  for (std::uint64_t i = 0; i < 48; ++i) {
    (void)batch->join(profile_of(i));
    (void)one->join(profile_of(i));
  }
  (void)batch->end_epoch();
  (void)one->end_epoch();

  Rng victims(77);
  std::vector<std::uint64_t> present(48);
  for (std::uint64_t i = 0; i < 48; ++i) present[i] = i;
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (int l = 0; l < 3; ++l) {
      const auto idx = victims.uniform_u64(present.size());
      batch->leave(make_member_id(present[idx]));
      one->leave(make_member_id(present[idx]));
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    const auto out_batch = batch->end_epoch();
    const auto out_one = one->end_epoch();
    EXPECT_EQ(out_batch.message.cost(), out_one.message.cost()) << "epoch " << epoch;
    EXPECT_EQ(batch->size(), one->size());
  }
}

TEST(BatchPolicy, MixedChurnStaysConsistent) {
  // Mixed epochs may cost more than OneTree (a join staged after a leave
  // cannot reuse the slot until next epoch), but sizes must track exactly
  // and every member's path must end at the group key.
  auto batch = server_of("batch", 3, 0x9999);
  auto one = server_of("one-tree", 3, 0x9999);
  Rng churn(31);
  std::vector<std::uint64_t> present;
  std::uint64_t next = 0;
  std::uint64_t batch_total = 0;
  std::uint64_t one_total = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto joins = 2 + churn.uniform_u64(4);
    for (std::uint64_t j = 0; j < joins; ++j, ++next) {
      (void)batch->join(profile_of(next));
      (void)one->join(profile_of(next));
      present.push_back(next);
    }
    const auto leaves = churn.uniform_u64(std::min<std::uint64_t>(present.size(), 3));
    for (std::uint64_t l = 0; l < leaves; ++l) {
      const auto idx = churn.uniform_u64(present.size());
      batch->leave(make_member_id(present[idx]));
      one->leave(make_member_id(present[idx]));
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    batch_total += batch->end_epoch().message.cost();
    one_total += one->end_epoch().message.cost();
    ASSERT_EQ(batch->size(), one->size());
    ASSERT_EQ(batch->size(), present.size());
  }
  for (const auto id : present) {
    const auto path = batch->member_path(make_member_id(id));
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), batch->group_key_id());
  }
  // Batching within the same total workload stays in the same cost regime.
  EXPECT_LE(batch_total, one_total * 3 + 16);
  EXPECT_GT(batch_total, 0u);
}

}  // namespace
}  // namespace gk::partition
