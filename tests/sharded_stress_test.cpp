// Concurrent-ingestion stress for ShardedRekeyCore, written to run clean
// under ThreadSanitizer: N producer threads stage join/leave mutations
// through the lock-free MPSC queue while one committing thread drives 120+
// epochs with a shard-parallel executor attached. Every epoch the harness
// replays the multicast into member key rings and asserts the three group
// key invariants (agreement, forward secrecy, backward secrecy) via
// faultsim::InvariantChecker.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/mpsc_queue.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/sharded_core.h"
#include "faultsim/invariants.h"
#include "lkh/key_ring.h"
#include "partition/factory.h"
#include "workload/member.h"

namespace gk {
namespace {

// ------------------------------------------------- MPSC under contention --

TEST(MpscQueueStress, ManyProducersOneConsumerKeepPerProducerFifo) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  common::MpscQueue<std::uint64_t> queue;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        queue.push((p << 32) | i);
        if (i % 64 == 0) std::this_thread::yield();
      }
    });
  }

  // The single consumer drains concurrently with the producers. A nullopt
  // mid-stream is legal (a producer between exchange and link); every fully
  // pushed value must eventually surface, in per-producer order.
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    if (const auto value = queue.try_pop()) {
      const auto producer = *value >> 32;
      const auto seq = *value & 0xffffffffULL;
      ASSERT_LT(producer, kProducers);
      ASSERT_EQ(seq, next_seq[producer]) << "producer " << producer;
      ++next_seq[producer];
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& producer : producers) producer.join();
  EXPECT_TRUE(queue.approx_empty());
  EXPECT_FALSE(queue.try_pop().has_value());
}

// ------------------------------------------- staged ingestion vs epochs --

workload::MemberProfile stress_profile(std::uint64_t id) {
  workload::MemberProfile profile;
  profile.id = workload::make_member_id(id);
  profile.member_class =
      id % 2 == 0 ? workload::MemberClass::kShort : workload::MemberClass::kLong;
  profile.duration = profile.member_class == workload::MemberClass::kShort ? 30.0 : 900.0;
  return profile;
}

TEST(ShardedStress, ConcurrentStagingPreservesSecrecyInvariants) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kJoinsPerProducer = 250;
  constexpr std::uint64_t kIdStride = 100000;  // disjoint per-producer id ranges
  constexpr std::uint64_t kMinEpochs = 120;

  partition::SchemeConfig config;
  config.degree = 3;
  config.s_period_epochs = 4;
  auto owner = partition::make_sharded_server("qt", config, 4, Rng(0x5eed));
  auto* server = dynamic_cast<engine::ShardedRekeyCore*>(owner.get());
  ASSERT_NE(server, nullptr);
  common::ThreadPool pool(4);
  server->set_executor(&pool);

  // Producers stage joins of fresh ids and leaves of their *own* earlier
  // joins. Per-producer queue FIFO guarantees a leave never drains before
  // its join; disjoint id ranges keep producers independent.
  std::atomic<std::uint64_t> producers_running{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([server, p, &producers_running] {
      const std::uint64_t base = 1 + p * kIdStride;
      std::uint64_t leave_cursor = 0;
      for (std::uint64_t i = 0; i < kJoinsPerProducer; ++i) {
        server->stage_join(stress_profile(base + i));
        if (i >= 9 && i % 3 == 0) server->stage_leave(
            workload::make_member_id(base + leave_cursor++));
        if (i % 16 == 0) std::this_thread::yield();
      }
      producers_running.fetch_sub(1, std::memory_order_release);
    });
  }

  // Committing-thread harness state: one key ring per tracked member, plus
  // the invariant checker's archived eviction rings and join probes.
  faultsim::InvariantChecker checker;
  struct MemberState {
    lkh::KeyRing ring;
    crypto::Key128 individual;
    crypto::KeyId leaf_id{};
  };
  std::map<std::uint64_t, MemberState> members;

  const auto commit_one_epoch = [&] {
    const auto out = server->end_epoch();
    checker.note_commit(out.epoch, out.term);

    // Archive evicted rings *before* recording this epoch's message, so the
    // forward-secrecy replay covers the eviction epoch itself. A member that
    // joined and left inside one drain never becomes live at all.
    std::unordered_set<std::uint64_t> evicted_now;
    for (const auto member : server->last_evictions()) {
      evicted_now.insert(workload::raw(member));
      const auto it = members.find(workload::raw(member));
      if (it == members.end()) continue;
      checker.note_eviction(it->second.ring);
      members.erase(it);
    }
    for (const auto& admission : server->last_admissions()) {
      if (evicted_now.contains(workload::raw(admission.member))) continue;
      lkh::KeyRing ring(admission.member, admission.registration.leaf_id,
                        admission.registration.individual_key);
      checker.note_join(ring);  // backward-secrecy probe: pre-join state
      members.emplace(workload::raw(admission.member),
                      MemberState{std::move(ring),
                                  admission.registration.individual_key,
                                  admission.registration.leaf_id});
    }

    checker.note_message(out.message);

    // Partition migrations move leaves; placement is public structure, so
    // the member re-registers its unchanged individual key under the new id.
    for (auto& [raw_id, state] : members) {
      const auto leaf = server->member_leaf_id(workload::make_member_id(raw_id));
      if (leaf != state.leaf_id) {
        state.leaf_id = leaf;
        state.ring.grant(leaf, {state.individual, 0});
      }
    }
    std::vector<const lkh::KeyRing*> live;
    live.reserve(members.size());
    for (auto& [raw_id, state] : members) {
      (void)state.ring.process(out.message);
      live.push_back(&state.ring);
    }
    checker.check_epoch(out.epoch, server->group_key_id(), server->group_key(), live);
  };

  std::uint64_t epochs = 0;
  while (epochs < kMinEpochs ||
         producers_running.load(std::memory_order_acquire) > 0) {
    commit_one_epoch();
    ++epochs;
    std::this_thread::yield();
  }
  for (auto& producer : producers) producer.join();
  // All staging completed before the joins returned; one more drain commits
  // any ops that raced the final in-loop epoch barrier.
  commit_one_epoch();
  ++epochs;

  constexpr std::uint64_t kLeavesPerProducer = 1 + (kJoinsPerProducer - 1 - 9) / 3;
  const std::uint64_t expected =
      kProducers * (kJoinsPerProducer - kLeavesPerProducer);
  EXPECT_EQ(server->size(), expected);
  EXPECT_EQ(members.size(), expected);
  EXPECT_GE(epochs, kMinEpochs + 1);
  EXPECT_GE(checker.checks_run(), kMinEpochs);
  // A join and its leave can drain inside one epoch (the member never goes
  // live), so the tracked-eviction count is bounded, not exact.
  EXPECT_GT(checker.evicted_tracked(), 0u);
  EXPECT_LE(checker.evicted_tracked(), kProducers * kLeavesPerProducer);
  EXPECT_GE(checker.probes_run(), expected);
}

}  // namespace
}  // namespace gk
