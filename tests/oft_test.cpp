#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "oft/oft_member.h"
#include "oft/oft_tree.h"

namespace gk::oft {
namespace {

using workload::make_member_id;

/// End-to-end OFT fixture: server tree plus live member folds. Structure
/// (public topology) is refreshed after every operation, as a real protocol
/// would do via message headers.
class OftGroup {
 public:
  explicit OftGroup(std::uint64_t seed = 99) : tree_(Rng(seed)) {}

  void join(std::uint64_t id) {
    lkh::RekeyMessage message;
    const auto grant = tree_.join(make_member_id(id), message);
    members_.emplace(id, OftMember(make_member_id(id), grant,
                                   tree_.path_info(make_member_id(id))));
    broadcast(message);
  }

  void leave(std::uint64_t id) {
    lkh::RekeyMessage message;
    tree_.leave(make_member_id(id), message);
    evicted_.insert(std::move(members_.extract(id)));
    broadcast(message);
  }

  [[nodiscard]] bool member_in_sync(std::uint64_t id) const {
    const auto key = members_.at(id).compute_group_key();
    return key.has_value() && *key == tree_.group_key().key;
  }

  [[nodiscard]] bool evicted_in_sync(std::uint64_t id) const {
    const auto key = evicted_.at(id).compute_group_key();
    return key.has_value() && *key == tree_.group_key().key;
  }

  OftTree& tree() { return tree_; }
  [[nodiscard]] std::size_t last_cost() const { return last_cost_; }

 private:
  void broadcast(const lkh::RekeyMessage& message) {
    last_cost_ = message.wraps.size();
    for (auto& [id, member] : members_) {
      member.process(message.wraps);
      member.set_structure(tree_.path_info(make_member_id(id)));
      member.process(message.wraps);  // order-insensitive second chance
    }
    for (auto& [id, member] : evicted_) member.process(message.wraps);
  }

  OftTree tree_;
  std::map<std::uint64_t, OftMember> members_;
  std::map<std::uint64_t, OftMember> evicted_;
  std::size_t last_cost_ = 0;
};

TEST(OftTree, FirstMemberDerivesGroupKey) {
  OftGroup group;
  group.join(1);
  EXPECT_TRUE(group.member_in_sync(1));
}

TEST(OftTree, TwoMembersShareGroupKey) {
  OftGroup group;
  group.join(1);
  group.join(2);
  EXPECT_TRUE(group.member_in_sync(1));
  EXPECT_TRUE(group.member_in_sync(2));
}

TEST(OftTree, GrowingGroupStaysInSync) {
  OftGroup group;
  for (std::uint64_t i = 0; i < 32; ++i) {
    group.join(i);
    for (std::uint64_t j = 0; j <= i; ++j)
      ASSERT_TRUE(group.member_in_sync(j)) << "member " << j << " after join " << i;
  }
  EXPECT_EQ(group.tree().size(), 32u);
}

TEST(OftTree, JoinChangesGroupKey) {
  OftGroup group;
  group.join(1);
  group.join(2);
  const auto before = group.tree().group_key().key;
  group.join(3);
  EXPECT_NE(group.tree().group_key().key, before);
}

TEST(OftTree, LeaveChangesGroupKey) {
  OftGroup group;
  for (std::uint64_t i = 0; i < 8; ++i) group.join(i);
  const auto before = group.tree().group_key().key;
  group.leave(3);
  EXPECT_NE(group.tree().group_key().key, before);
}

TEST(OftTree, SurvivorsRecoverAfterLeave) {
  OftGroup group;
  for (std::uint64_t i = 0; i < 16; ++i) group.join(i);
  group.leave(5);
  group.leave(11);
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (i == 5 || i == 11) continue;
    EXPECT_TRUE(group.member_in_sync(i)) << "member " << i;
  }
}

TEST(OftTree, EvictedMemberLosesAccess) {
  OftGroup group;
  for (std::uint64_t i = 0; i < 8; ++i) group.join(i);
  group.leave(2);
  EXPECT_FALSE(group.evicted_in_sync(2));
}

TEST(OftTree, NewcomerCannotComputeOldKey) {
  OftGroup group;
  for (std::uint64_t i = 0; i < 8; ++i) group.join(i);
  const auto old_key = group.tree().group_key().key;
  group.join(100);
  EXPECT_TRUE(group.member_in_sync(100));
  EXPECT_NE(group.tree().group_key().key, old_key);
}

TEST(OftTree, LeaveCostLogarithmicNotDTimesLog) {
  // OFT's selling point: a departure costs ~log2(N) wraps (one blinded key
  // per level plus one re-randomization), not d * logd(N).
  OftGroup group;
  for (std::uint64_t i = 0; i < 256; ++i) group.join(i);
  group.leave(77);
  // Height is ~8 for 256 members; allow slack for imbalance.
  EXPECT_LE(group.last_cost(), 12u);
  EXPECT_GE(group.last_cost(), 5u);
}

TEST(OftTree, ChurnKeepsEveryoneInSync) {
  OftGroup group(4321);
  Rng rng(8765);
  std::vector<std::uint64_t> present;
  std::uint64_t next = 0;
  for (int step = 0; step < 120; ++step) {
    if (present.size() < 4 || rng.bernoulli(0.6)) {
      group.join(next);
      present.push_back(next++);
    } else {
      const auto idx = rng.uniform_u64(present.size());
      group.leave(present[idx]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    for (const auto id : present)
      ASSERT_TRUE(group.member_in_sync(id)) << "member " << id << " step " << step;
  }
}

TEST(OftTree, PathInfoShapesAgree) {
  OftGroup group;
  for (std::uint64_t i = 0; i < 10; ++i) group.join(i);
  const auto info = group.tree().path_info(make_member_id(4));
  EXPECT_EQ(info.path.size(), info.siblings.size() + 1);
  EXPECT_EQ(info.path.back(), group.tree().root_id());
}

}  // namespace
}  // namespace gk::oft
