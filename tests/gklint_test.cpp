// Fixture-driven tests for gklint, the repo's key-hygiene checker. Every
// rule has one fixture seeding a violation and one clean counterpart; the
// tests pin the exact rule-id and line of each finding so rule behavior
// cannot drift silently, and prove the allow-comment suppression mechanism
// works (and demands a justification).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gklint/lint.h"

namespace gk::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(GKLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

using RuleLine = std::pair<std::size_t, std::string>;

std::vector<RuleLine> lint(const std::string& display_path, const std::string& text) {
  Registry registry;
  collect_markers(text, registry);
  std::vector<RuleLine> out;
  for (const auto& f : lint_source(display_path, text, registry))
    out.emplace_back(f.line, f.rule);
  return out;
}

/// Apply --fix passes until the text stops changing, like the CLI does.
std::string fix_to_stable(const std::string& display_path, std::string text) {
  Registry registry;
  collect_markers(text, registry);
  for (int pass = 0; pass < 16; ++pass) {
    std::string fixed;
    (void)lint_source(display_path, text, registry, &fixed);
    if (fixed.empty()) break;
    text = fixed;
  }
  return text;
}

// ------------------------------------------------------------- ct-compare --

TEST(gklint, CtCompareCatchesSeededViolations) {
  const auto got = lint("src/fake/secret.h", fixture("ct_compare_violation.h"));
  const std::vector<RuleLine> want = {{8, "ct-compare"},
                                      {9, "ct-compare"},
                                      {13, "ct-compare"},
                                      {17, "ct-compare"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, CtCompareCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/clean.h", fixture("ct_compare_clean.h")).empty());
}

TEST(gklint, CtCompareAllowsHandWrittenEqualityOnlyInKeyHeader) {
  const std::string decl =
      "#pragma once\n"
      "// gklint: secret-type(Key128)\n"
      "class Key128 {\n"
      "  friend bool operator==(const Key128& a, const Key128& b) noexcept;\n"
      "};\n";
  EXPECT_TRUE(lint("src/crypto/key.h", decl).empty());
  const auto elsewhere = lint("src/lkh/key_tree.h", decl);
  ASSERT_EQ(elsewhere.size(), 1u);
  EXPECT_EQ(elsewhere[0], (RuleLine{4, "ct-compare"}));
}

// ------------------------------------------------------------- secret-log --

TEST(gklint, SecretLogCatchesStreamedKeyBytes) {
  const auto got = lint("src/transport/debug_dump.cpp",
                        fixture("secret_log_violation.cpp"));
  const std::vector<RuleLine> want = {{7, "secret-log"},
                                      {8, "secret-log"},
                                      {8, "secret-log"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, SecretLogCleanFixturePasses) {
  EXPECT_TRUE(
      lint("src/transport/debug_dump.cpp", fixture("secret_log_clean.cpp")).empty());
}

TEST(gklint, SecretLogPermitsHexFullInsideTests) {
  const std::string text = "void f(const K& k) { use(k.hex_full()); }\n";
  EXPECT_TRUE(lint("tests/crypto_test.cpp", text).empty());
  ASSERT_EQ(lint("src/lkh/journal.cpp", text).size(), 1u);
}

// ---------------------------------------------------------------- raw-rng --

TEST(gklint, RawRngCatchesEveryBannedSource) {
  const auto got = lint("src/workload/dice.cpp", fixture("raw_rng_violation.cpp"));
  const std::vector<RuleLine> want = {{5, "raw-rng"},
                                      {6, "raw-rng"},
                                      {7, "raw-rng"},
                                      {8, "raw-rng"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, RawRngCleanFixturePasses) {
  EXPECT_TRUE(lint("src/workload/dice.cpp", fixture("raw_rng_clean.cpp")).empty());
}

TEST(gklint, RawRngAllowlistsTheRngImplementation) {
  EXPECT_TRUE(lint("src/common/rng.cpp", fixture("raw_rng_violation.cpp")).empty());
}

// -------------------------------------------------------------- banned-fn --

TEST(gklint, BannedFnCatchesUnsafeCalls) {
  const auto got = lint("src/transport/wipe.cpp", fixture("banned_fn_violation.cpp"));
  const std::vector<RuleLine> want = {{4, "banned-fn"},
                                      {5, "banned-fn"},
                                      {6, "banned-fn"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, BannedFnCleanFixturePasses) {
  EXPECT_TRUE(lint("src/transport/wipe.cpp", fixture("banned_fn_clean.cpp")).empty());
}

// ------------------------------------------------------------ pragma-once --

TEST(gklint, PragmaOnceRequiredInHeaders) {
  const auto got = lint("src/fake/legacy.h", fixture("pragma_once_violation.h"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (RuleLine{1, "pragma-once"}));
}

TEST(gklint, PragmaOnceCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/legacy.h", fixture("pragma_once_clean.h")).empty());
}

TEST(gklint, PragmaOnceFixInsertsThePragma) {
  const auto fixed = fix_to_stable("src/fake/legacy.h", fixture("pragma_once_violation.h"));
  EXPECT_EQ(fixed.substr(0, 13), "#pragma once\n");
  EXPECT_TRUE(lint("src/fake/legacy.h", fixed).empty());
}

// ---------------------------------------------------------- include-order --

TEST(gklint, IncludeOrderCatchesUnsortedAndMixedBlocks) {
  const auto got = lint("src/fake/other.cpp", fixture("include_order_violation.cpp"));
  const std::vector<RuleLine> want = {{2, "include-order"},
                                      {5, "include-order"},
                                      {8, "include-order"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, IncludeOrderCleanFixtureWithOwnHeaderPinPasses) {
  EXPECT_TRUE(
      lint("src/sim/transport_sim.cpp", fixture("include_order_clean.cpp")).empty());
}

TEST(gklint, IncludeOrderPinsIntrinsicsHeadersInPlace) {
  // <immintrin.h> splits the surrounding block instead of sorting into it,
  // and guarded intrinsics pairs are never reordered — moving one outside
  // its #if guard would break non-x86 builds.
  const auto text = fixture("include_order_intrinsics.cpp");
  EXPECT_TRUE(lint("src/crypto/simd/kernel.cpp", text).empty());
  EXPECT_EQ(fix_to_stable("src/crypto/simd/kernel.cpp", text), text);
}

TEST(gklint, IncludeOrderFixSortsAndSplitsBlocks) {
  const auto fixed =
      fix_to_stable("src/fake/other.cpp", fixture("include_order_violation.cpp"));
  const std::string want =
      "#include \"alpha/a.h\"\n"
      "#include \"zeta/b.h\"\n"
      "\n"
      "#include <array>\n"
      "#include <vector>\n"
      "\n"
      "#include <cstdio>\n"
      "\n"
      "#include \"beta/c.h\"\n"
      "\n"
      "int main() { return 0; }\n";
  EXPECT_EQ(fixed, want);
  EXPECT_TRUE(lint("src/fake/other.cpp", fixed).empty());
}

// -------------------------------------------------------------- nodiscard --

TEST(gklint, NodiscardRequiredOnOptionalReturns) {
  const auto got = lint("src/fake/parser.h", fixture("nodiscard_violation.h"));
  const std::vector<RuleLine> want = {{6, "nodiscard"}, {9, "nodiscard"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, NodiscardCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/parser.h", fixture("nodiscard_clean.h")).empty());
}

// ---------------------------------------------------------- explicit-ctor --

TEST(gklint, ExplicitCtorCatchesSingleArgConstructors) {
  const auto got = lint("src/fake/handle.h", fixture("explicit_ctor_violation.h"));
  const std::vector<RuleLine> want = {{5, "explicit-ctor"}, {7, "explicit-ctor"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, ExplicitCtorCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/handle.h", fixture("explicit_ctor_clean.h")).empty());
}

// ------------------------------------------------------------ suppression --

TEST(gklint, SuppressionWithJustificationSilencesFindings) {
  const auto got = lint("src/fake/supp.cpp", fixture("suppression.cpp"));
  const std::vector<RuleLine> want = {{13, "bad-suppression"},
                                      {13, "raw-rng"},
                                      {17, "bad-suppression"},
                                      {17, "raw-rng"}};
  EXPECT_EQ(got, want);
}

// ----------------------------------------------------------------- output --

TEST(gklint, FindingsRenderAsClickableFileLineRule) {
  Registry registry;
  const auto findings =
      lint_source("src/fake/legacy.h", fixture("pragma_once_violation.h"), registry);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].render().substr(0, 28), "src/fake/legacy.h:1: pragma-");
}

TEST(gklint, SecretTypeMarkerRegistersNewTypes) {
  Registry registry;
  collect_markers("// gklint: secret-type(WrapSeed)\n", registry);
  EXPECT_EQ(registry.secret_types.count("WrapSeed"), 1u);
  EXPECT_EQ(registry.secret_types.count("Key128"), 1u);  // built in
}

}  // namespace
}  // namespace gk::lint
