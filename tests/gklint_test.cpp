// Fixture-driven tests for gklint, the repo's key-hygiene checker. Every
// rule has one fixture seeding a violation and one clean counterpart; the
// tests pin the exact rule-id and line of each finding so rule behavior
// cannot drift silently, and prove the allow-comment suppression mechanism
// works (and demands a justification).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gklint/lint.h"

namespace gk::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(GKLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

using RuleLine = std::pair<std::size_t, std::string>;

std::vector<RuleLine> lint(const std::string& display_path, const std::string& text) {
  Registry registry;
  collect_markers(text, registry);
  std::vector<RuleLine> out;
  for (const auto& f : lint_source(display_path, text, registry))
    out.emplace_back(f.line, f.rule);
  return out;
}

/// Apply --fix passes until the text stops changing, like the CLI does.
std::string fix_to_stable(const std::string& display_path, std::string text) {
  Registry registry;
  collect_markers(text, registry);
  for (int pass = 0; pass < 16; ++pass) {
    std::string fixed;
    (void)lint_source(display_path, text, registry, &fixed);
    if (fixed.empty()) break;
    text = fixed;
  }
  return text;
}

// ------------------------------------------------------------- ct-compare --

TEST(gklint, CtCompareCatchesSeededViolations) {
  const auto got = lint("src/fake/secret.h", fixture("ct_compare_violation.h"));
  const std::vector<RuleLine> want = {{8, "ct-compare"},
                                      {9, "ct-compare"},
                                      {13, "ct-compare"},
                                      {17, "ct-compare"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, CtCompareCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/clean.h", fixture("ct_compare_clean.h")).empty());
}

TEST(gklint, CtCompareAllowsHandWrittenEqualityOnlyInKeyHeader) {
  const std::string decl =
      "#pragma once\n"
      "// gklint: secret-type(Key128)\n"
      "class Key128 {\n"
      "  friend bool operator==(const Key128& a, const Key128& b) noexcept;\n"
      "};\n";
  EXPECT_TRUE(lint("src/crypto/key.h", decl).empty());
  const auto elsewhere = lint("src/lkh/key_tree.h", decl);
  ASSERT_EQ(elsewhere.size(), 1u);
  EXPECT_EQ(elsewhere[0], (RuleLine{4, "ct-compare"}));
}

// ------------------------------------------------------------- secret-log --

TEST(gklint, SecretLogCatchesStreamedKeyBytes) {
  const auto got = lint("src/transport/debug_dump.cpp",
                        fixture("secret_log_violation.cpp"));
  // The flow-aware secret-taint rule independently tracks the Key128
  // parameter into both sinks, so each line carries both rule ids.
  const std::vector<RuleLine> want = {{7, "secret-log"},
                                      {7, "secret-taint"},
                                      {8, "secret-log"},
                                      {8, "secret-log"},
                                      {8, "secret-taint"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, SecretLogCleanFixturePasses) {
  EXPECT_TRUE(
      lint("src/transport/debug_dump.cpp", fixture("secret_log_clean.cpp")).empty());
}

TEST(gklint, SecretLogPermitsHexFullInsideTests) {
  const std::string text = "void f(const K& k) { use(k.hex_full()); }\n";
  EXPECT_TRUE(lint("tests/crypto_test.cpp", text).empty());
  ASSERT_EQ(lint("src/lkh/journal.cpp", text).size(), 1u);
}

// ---------------------------------------------------------------- raw-rng --

TEST(gklint, RawRngCatchesEveryBannedSource) {
  const auto got = lint("src/workload/dice.cpp", fixture("raw_rng_violation.cpp"));
  const std::vector<RuleLine> want = {{5, "raw-rng"},
                                      {6, "raw-rng"},
                                      {7, "raw-rng"},
                                      {8, "raw-rng"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, RawRngCleanFixturePasses) {
  EXPECT_TRUE(lint("src/workload/dice.cpp", fixture("raw_rng_clean.cpp")).empty());
}

TEST(gklint, RawRngAllowlistsTheRngImplementation) {
  EXPECT_TRUE(lint("src/common/rng.cpp", fixture("raw_rng_violation.cpp")).empty());
}

// -------------------------------------------------------------- banned-fn --

TEST(gklint, BannedFnCatchesUnsafeCalls) {
  const auto got = lint("src/transport/wipe.cpp", fixture("banned_fn_violation.cpp"));
  const std::vector<RuleLine> want = {{4, "banned-fn"},
                                      {5, "banned-fn"},
                                      {6, "banned-fn"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, BannedFnCleanFixturePasses) {
  EXPECT_TRUE(lint("src/transport/wipe.cpp", fixture("banned_fn_clean.cpp")).empty());
}

// ------------------------------------------------------------ pragma-once --

TEST(gklint, PragmaOnceRequiredInHeaders) {
  const auto got = lint("src/fake/legacy.h", fixture("pragma_once_violation.h"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (RuleLine{1, "pragma-once"}));
}

TEST(gklint, PragmaOnceCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/legacy.h", fixture("pragma_once_clean.h")).empty());
}

TEST(gklint, PragmaOnceFixInsertsThePragma) {
  const auto fixed = fix_to_stable("src/fake/legacy.h", fixture("pragma_once_violation.h"));
  EXPECT_EQ(fixed.substr(0, 13), "#pragma once\n");
  EXPECT_TRUE(lint("src/fake/legacy.h", fixed).empty());
}

// ---------------------------------------------------------- include-order --

TEST(gklint, IncludeOrderCatchesUnsortedAndMixedBlocks) {
  const auto got = lint("src/fake/other.cpp", fixture("include_order_violation.cpp"));
  const std::vector<RuleLine> want = {{2, "include-order"},
                                      {5, "include-order"},
                                      {8, "include-order"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, IncludeOrderCleanFixtureWithOwnHeaderPinPasses) {
  EXPECT_TRUE(
      lint("src/sim/transport_sim.cpp", fixture("include_order_clean.cpp")).empty());
}

TEST(gklint, IncludeOrderPinsIntrinsicsHeadersInPlace) {
  // <immintrin.h> splits the surrounding block instead of sorting into it,
  // and guarded intrinsics pairs are never reordered — moving one outside
  // its #if guard would break non-x86 builds.
  const auto text = fixture("include_order_intrinsics.cpp");
  EXPECT_TRUE(lint("src/crypto/simd/kernel.cpp", text).empty());
  EXPECT_EQ(fix_to_stable("src/crypto/simd/kernel.cpp", text), text);
}

TEST(gklint, IncludeOrderFixSortsAndSplitsBlocks) {
  const auto fixed =
      fix_to_stable("src/fake/other.cpp", fixture("include_order_violation.cpp"));
  const std::string want =
      "#include \"alpha/a.h\"\n"
      "#include \"zeta/b.h\"\n"
      "\n"
      "#include <array>\n"
      "#include <vector>\n"
      "\n"
      "#include <cstdio>\n"
      "\n"
      "#include \"beta/c.h\"\n"
      "\n"
      "int main() { return 0; }\n";
  EXPECT_EQ(fixed, want);
  EXPECT_TRUE(lint("src/fake/other.cpp", fixed).empty());
}

// -------------------------------------------------------------- nodiscard --

TEST(gklint, NodiscardRequiredOnOptionalReturns) {
  const auto got = lint("src/fake/parser.h", fixture("nodiscard_violation.h"));
  const std::vector<RuleLine> want = {{6, "nodiscard"}, {9, "nodiscard"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, NodiscardCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/parser.h", fixture("nodiscard_clean.h")).empty());
}

// ---------------------------------------------------------- explicit-ctor --

TEST(gklint, ExplicitCtorCatchesSingleArgConstructors) {
  const auto got = lint("src/fake/handle.h", fixture("explicit_ctor_violation.h"));
  const std::vector<RuleLine> want = {{5, "explicit-ctor"}, {7, "explicit-ctor"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, ExplicitCtorCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/handle.h", fixture("explicit_ctor_clean.h")).empty());
}

// ------------------------------------------------------------ suppression --

TEST(gklint, SuppressionWithJustificationSilencesFindings) {
  const auto got = lint("src/fake/supp.cpp", fixture("suppression.cpp"));
  const std::vector<RuleLine> want = {{13, "bad-suppression"},
                                      {13, "raw-rng"},
                                      {17, "bad-suppression"},
                                      {17, "raw-rng"}};
  EXPECT_EQ(got, want);
}

// ----------------------------------------------------------------- output --

TEST(gklint, FindingsRenderAsClickableFileLineRule) {
  Registry registry;
  const auto findings =
      lint_source("src/fake/legacy.h", fixture("pragma_once_violation.h"), registry);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].render().substr(0, 28), "src/fake/legacy.h:1: pragma-");
}

TEST(gklint, SecretTypeMarkerRegistersNewTypes) {
  Registry registry;
  collect_markers("// gklint: secret-type(WrapSeed)\n", registry);
  EXPECT_EQ(registry.secret_types.count("WrapSeed"), 1u);
  EXPECT_EQ(registry.secret_types.count("Key128"), 1u);  // built in
}

// ------------------------------------------------------------ secret-taint --

TEST(gklint, SecretTaintTracksAliasesIntoSinks) {
  const auto got = lint("src/fake/taint.cpp", fixture("secret_taint_violation.cpp"));
  const std::vector<RuleLine> want = {{10, "secret-taint"},
                                      {16, "secret-taint"},
                                      {21, "secret-taint"},
                                      {25, "secret-taint"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, SecretTaintCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/taint.cpp", fixture("secret_taint_clean.cpp")).empty());
}

TEST(gklint, SecretTaintLogSinkAllowedInTests) {
  // tests/ may print and memcpy key material, but the non-constant-time
  // comparison sink still applies outside src/crypto/.
  const auto got = lint("tests/fake_test.cpp", fixture("secret_taint_violation.cpp"));
  const std::vector<RuleLine> want = {{16, "secret-taint"}};
  EXPECT_EQ(got, want);
}

// --------------------------------------------------------- lock-discipline --

TEST(gklint, LockDisciplineFlagsUnownedFields) {
  const auto got =
      lint("src/fake/staging.h", fixture("lock_discipline_violation.h"));
  const std::vector<RuleLine> want = {{15, "lock-discipline"},
                                      {16, "lock-discipline"},
                                      {17, "lock-discipline"},
                                      {18, "lock-discipline"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, LockDisciplineCleanFixturePasses) {
  EXPECT_TRUE(
      lint("src/fake/staging.h", fixture("lock_discipline_clean.h")).empty());
}

TEST(gklint, LockDisciplineIgnoresLockFreeClasses) {
  const std::string text =
      "class Plain {\n"
      "  int a_ = 0;\n"
      "  bool b_ = false;\n"
      "};\n";
  EXPECT_TRUE(lint("src/fake/plain.cpp", text).empty());
}

// ------------------------------------------------------ memory-order-audit --

TEST(gklint, MemoryOrderAuditFlagsBareAndUnjustifiedOps) {
  const auto got = lint("src/fake/atomics.cpp", fixture("memory_order_violation.cpp"));
  const std::vector<RuleLine> want = {
      {7, "memory-order-audit"},  {9, "memory-order-audit"},
      {11, "memory-order-audit"}, {13, "memory-order-audit"},
      {15, "memory-order-audit"}, {18, "memory-order-audit"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, MemoryOrderCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/atomics.cpp", fixture("memory_order_clean.cpp")).empty());
}

// -------------------------------------------------------------- raii-wipe --

TEST(gklint, RaiiWipeFlagsUnwipedKeyBuffers) {
  const auto got = lint("src/fake/wipe.cpp", fixture("raii_wipe_violation.cpp"));
  const std::vector<RuleLine> want = {{15, "raii-wipe"},
                                      {20, "raii-wipe"},
                                      {29, "raii-wipe"},
                                      {35, "raii-wipe"}};
  EXPECT_EQ(got, want);
}

TEST(gklint, RaiiWipeCleanFixturePasses) {
  EXPECT_TRUE(lint("src/fake/wipe.cpp", fixture("raii_wipe_clean.cpp")).empty());
}

TEST(gklint, RaiiWipeExemptsTestProcesses) {
  EXPECT_TRUE(lint("tests/fake_test.cpp", fixture("raii_wipe_violation.cpp")).empty());
}

// ----------------------------------------------- suppression is rule-exact --

TEST(gklint, SuppressionOnlySilencesTheNamedRule) {
  // One line carries both a secret-log and a secret-taint finding; the
  // allow() names only secret-log, so secret-taint must survive.
  const auto got = lint("src/fake/dump.cpp", fixture("suppression_exact.cpp"));
  const std::vector<RuleLine> want = {{11, "secret-taint"}};
  EXPECT_EQ(got, want);
}

// --------------------------------------------------- severity / JSON / baseline --

TEST(gklint, SeveritySplitsCorrectnessFromHygiene) {
  EXPECT_EQ(severity_of("secret-taint"), "error");
  EXPECT_EQ(severity_of("raii-wipe"), "error");
  EXPECT_EQ(severity_of("memory-order-audit"), "error");
  EXPECT_EQ(severity_of("lock-discipline"), "error");
  EXPECT_EQ(severity_of("nodiscard"), "warning");
  EXPECT_EQ(severity_of("include-order"), "warning");
}

TEST(gklint, RenderJsonEmitsOneObjectPerFinding) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "secret-taint", "leaky \"alias\""},
      {"src/b.h", 9, "nodiscard", "droppable status"}};
  const std::string json = render_json(findings);
  EXPECT_NE(json.find("{\"file\": \"src/a.cpp\", \"line\": 3, \"rule\": "
                      "\"secret-taint\", \"severity\": \"error\", \"message\": "
                      "\"leaky \\\"alias\\\"\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_EQ(render_json({}), "[]\n");
}

TEST(gklint, BaselineMatchesByFileAndRule) {
  const auto baseline = parse_baseline(
      "# tolerated backlog\n"
      "\n"
      "src/a.cpp:secret-taint\n");
  EXPECT_TRUE(baseline.covers({"src/a.cpp", 3, "secret-taint", "m"}));
  EXPECT_TRUE(baseline.covers({"src/a.cpp", 99, "secret-taint", "m"}));  // any line
  EXPECT_FALSE(baseline.covers({"src/a.cpp", 3, "raii-wipe", "m"}));     // other rule
  EXPECT_FALSE(baseline.covers({"src/b.cpp", 3, "secret-taint", "m"}));  // other file
}

TEST(gklint, BaselineRoundTripsThroughRender) {
  const std::vector<Finding> findings = {{"src/a.cpp", 3, "secret-taint", "m"},
                                         {"src/a.cpp", 7, "secret-taint", "m"},
                                         {"src/b.h", 9, "nodiscard", "m"}};
  const auto reparsed = parse_baseline(render_baseline(findings));
  EXPECT_EQ(reparsed.entries.size(), 2u);  // deduplicated by path:rule
  EXPECT_TRUE(reparsed.covers(findings[0]));
  EXPECT_TRUE(reparsed.covers(findings[2]));
}

}  // namespace
}  // namespace gk::lint
