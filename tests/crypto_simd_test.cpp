// Differential property tests pinning the SIMD wrap kernels to the scalar
// reference: at every dispatch level the vectorized ChaCha20 / multi-buffer
// SHA-256 / batched wrap paths must produce byte-identical output (DESIGN.md
// §10 — journal replay and snapshots depend on it).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/keywrap.h"
#include "crypto/sha256.h"
#include "crypto/simd/chacha20_xn.h"
#include "crypto/simd/cpu.h"
#include "crypto/simd/sha256_mb.h"

namespace gk::crypto {
namespace {

// Every dispatch level this machine can run, widest last.
std::vector<CpuLevel> available_levels() {
  std::vector<CpuLevel> levels{CpuLevel::kScalar};
  if (cpu_features().sse2) levels.push_back(CpuLevel::kSse2);
  if (cpu_features().avx2) levels.push_back(CpuLevel::kAvx2);
  return levels;
}

// Run `fn` once per available dispatch level, restoring the level afterwards.
template <typename Fn>
void for_each_level(Fn&& fn) {
  const CpuLevel previous = cpu_level();
  for (const CpuLevel level : available_levels()) {
    force_cpu_level(level);
    fn(level);
  }
  force_cpu_level(previous);
}

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(rng() & 0xff);
  return out;
}

std::array<std::uint8_t, 32> random_chacha_key(Rng& rng) {
  std::array<std::uint8_t, 32> key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng() & 0xff);
  return key;
}

WrapNonce random_nonce(Rng& rng) {
  WrapNonce nonce;
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng() & 0xff);
  return nonce;
}

TEST(CpuDispatch, ParsesLevelNamesAndRejectsJunk) {
  EXPECT_EQ(parse_cpu_level("scalar"), CpuLevel::kScalar);
  EXPECT_EQ(parse_cpu_level("sse2"), CpuLevel::kSse2);
  EXPECT_EQ(parse_cpu_level("avx2"), CpuLevel::kAvx2);
  EXPECT_EQ(parse_cpu_level("avx512"), std::nullopt);
  EXPECT_EQ(parse_cpu_level(""), std::nullopt);
  for (const CpuLevel level : available_levels())
    EXPECT_EQ(parse_cpu_level(cpu_level_name(level)), level);
}

TEST(CpuDispatch, ForceClampsToHardwareAndRestores) {
  const CpuLevel previous = cpu_level();
  const CpuLevel got = force_cpu_level(CpuLevel::kAvx2);
  EXPECT_EQ(got, previous);
  EXPECT_LE(cpu_level(), cpu_features().best);
  force_cpu_level(CpuLevel::kScalar);
  EXPECT_EQ(cpu_level(), CpuLevel::kScalar);
  force_cpu_level(previous);
}

// In-place crypt at every level must match the scalar reference for random
// lengths and random call-split offsets (partial-block keystream carry).
TEST(ChaChaDifferential, InPlaceCryptMatchesScalarAcrossSplits) {
  Rng rng(0xC4A71);
  for (int trial = 0; trial < 50; ++trial) {
    const auto key = random_chacha_key(rng);
    const auto nonce = random_nonce(rng);
    const std::size_t len = rng() % 700;
    const auto plaintext = random_bytes(rng, len);
    const std::size_t split = len > 0 ? rng() % (len + 1) : 0;

    force_cpu_level(CpuLevel::kScalar);
    auto expected = plaintext;
    {
      ChaCha20 cipher(key, nonce);
      cipher.crypt(std::span<std::uint8_t>(expected.data(), split));
      cipher.crypt(std::span<std::uint8_t>(expected.data() + split, len - split));
    }

    for_each_level([&](CpuLevel level) {
      auto got = plaintext;
      ChaCha20 cipher(key, nonce);
      cipher.crypt(std::span<std::uint8_t>(got.data(), split));
      cipher.crypt(std::span<std::uint8_t>(got.data() + split, len - split));
      EXPECT_EQ(got, expected) << "level=" << cpu_level_name(level) << " len=" << len
                               << " split=" << split;
    });
  }
}

TEST(ChaChaDifferential, CryptCopyMatchesScalar) {
  Rng rng(0xC4A72);
  for (int trial = 0; trial < 20; ++trial) {
    const auto key = random_chacha_key(rng);
    const auto nonce = random_nonce(rng);
    const auto plaintext = random_bytes(rng, rng() % 1025);

    force_cpu_level(CpuLevel::kScalar);
    std::vector<std::uint8_t> expected;
    {
      ChaCha20 cipher(key, nonce);
      expected = cipher.crypt_copy(plaintext);
    }

    for_each_level([&](CpuLevel level) {
      ChaCha20 cipher(key, nonce);
      EXPECT_EQ(cipher.crypt_copy(plaintext), expected)
          << "level=" << cpu_level_name(level);
    });
  }
}

// The 32-bit block counter must wrap identically whether blocks are
// generated one at a time or eight per lane set.
TEST(ChaChaDifferential, CounterRolloverAcrossBlockBoundary) {
  Rng rng(0xC4A73);
  const auto key = random_chacha_key(rng);
  const auto nonce = random_nonce(rng);
  // 0xffffffff rolls over to 0 after the first 64-byte block; 1000 bytes
  // also exercises every lane remainder (15 whole blocks + tail).
  const auto plaintext = random_bytes(rng, 1000);

  force_cpu_level(CpuLevel::kScalar);
  std::vector<std::uint8_t> expected;
  {
    ChaCha20 cipher(key, nonce, /*initial_counter=*/0xffffffffu);
    expected = cipher.crypt_copy(plaintext);
  }

  for_each_level([&](CpuLevel level) {
    ChaCha20 cipher(key, nonce, /*initial_counter=*/0xffffffffu);
    EXPECT_EQ(cipher.crypt_copy(plaintext), expected)
        << "level=" << cpu_level_name(level);
  });
}

// Direct kernel check: every lane of chacha20_blocks emits the very block
// the scalar streaming class would, for per-lane keys/nonces/counters.
TEST(ChaChaDifferential, BlockKernelMatchesStreamPerLane) {
  Rng rng(0xC4A74);
  for (std::size_t lanes = 1; lanes <= 13; ++lanes) {
    std::vector<std::array<std::uint8_t, 32>> keys(lanes);
    std::vector<WrapNonce> nonces(lanes);
    std::vector<std::uint32_t> counters(lanes);
    std::vector<std::array<std::uint32_t, 16>> states(lanes);
    std::vector<std::array<std::uint8_t, 64>> blocks(lanes);
    std::vector<const std::uint32_t*> state_ptrs(lanes);
    std::vector<std::uint8_t*> out_ptrs(lanes);

    for (std::size_t i = 0; i < lanes; ++i) {
      keys[i] = random_chacha_key(rng);
      nonces[i] = random_nonce(rng);
      counters[i] = static_cast<std::uint32_t>(rng());
      auto load_le = [](const std::uint8_t* p) {
        return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
               (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
      };
      states[i] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
      for (std::size_t j = 0; j < 8; ++j) states[i][4 + j] = load_le(&keys[i][4 * j]);
      states[i][12] = counters[i];
      for (std::size_t j = 0; j < 3; ++j) states[i][13 + j] = load_le(&nonces[i][4 * j]);
      state_ptrs[i] = states[i].data();
      out_ptrs[i] = blocks[i].data();
    }

    for_each_level([&](CpuLevel level) {
      simd::chacha20_blocks(state_ptrs.data(), out_ptrs.data(), lanes);
      for (std::size_t i = 0; i < lanes; ++i) {
        ChaCha20 reference(keys[i], nonces[i], counters[i]);
        const std::vector<std::uint8_t> zeros(64, 0);
        const auto keystream = reference.crypt_copy(zeros);
        EXPECT_TRUE(std::equal(keystream.begin(), keystream.end(), blocks[i].begin()))
            << "level=" << cpu_level_name(level) << " lane=" << i << "/" << lanes;
      }
    });
  }
}

// Multi-buffer SHA-256 over lanes of unequal lengths — including empty
// messages, one-block tails, and the 55/56-byte two-block-tail threshold.
TEST(Sha256Differential, ManyMatchesScalarForUnequalLengths) {
  Rng rng(0x5AA256);
  const std::vector<std::size_t> tricky = {0, 1, 55, 56, 63, 64, 65, 119, 120, 127, 128};
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t count = 1 + rng() % 20;
    std::vector<std::vector<std::uint8_t>> messages(count);
    std::vector<const std::uint8_t*> ptrs(count);
    std::vector<std::size_t> lens(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t len =
          (rng() % 2 == 0) ? tricky[rng() % tricky.size()] : rng() % 300;
      messages[i] = random_bytes(rng, len);
      ptrs[i] = messages[i].data();
      lens[i] = len;
    }

    std::vector<Sha256::Digest> expected(count);
    for (std::size_t i = 0; i < count; ++i)
      expected[i] = sha256(std::span<const std::uint8_t>(ptrs[i], lens[i]));

    for_each_level([&](CpuLevel level) {
      std::vector<Sha256::Digest> got(count);
      simd::sha256_many(ptrs.data(), lens.data(), count, got.data());
      for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(got[i], expected[i])
            << "level=" << cpu_level_name(level) << " lane=" << i << " len=" << lens[i];
    });
  }
}

TEST(HmacDifferential, MidstateMatchesDirectHmac) {
  Rng rng(0x11AC1);
  for (int trial = 0; trial < 20; ++trial) {
    // Keys longer than one block exercise the pre-hash detour.
    const auto key = random_bytes(rng, rng() % 100);
    const auto message = random_bytes(rng, rng() % 200);
    const auto expected = hmac_sha256(key, message);
    const HmacMidstate midstate = hmac_midstate(key);
    EXPECT_EQ(hmac_sha256(midstate, message), expected);
  }
}

TEST(HmacDifferential, ManyMatchesScalarAtEveryLevel) {
  Rng rng(0x11AC2);
  const std::size_t count = 21;  // not a lane multiple: exercises stragglers
  std::vector<std::vector<std::uint8_t>> keys(count);
  std::vector<std::vector<std::uint8_t>> messages(count);
  std::vector<HmacMidstate> midstates(count);
  std::vector<const HmacMidstate*> midstate_ptrs(count);
  std::vector<const std::uint8_t*> msg_ptrs(count);
  std::vector<std::size_t> lens(count);
  std::vector<Sha256::Digest> expected(count);

  for (std::size_t i = 0; i < count; ++i) {
    keys[i] = random_bytes(rng, rng() % 100);
    messages[i] = random_bytes(rng, rng() % 200);
    expected[i] = hmac_sha256(keys[i], messages[i]);
    msg_ptrs[i] = messages[i].data();
    lens[i] = messages[i].size();
  }

  for_each_level([&](CpuLevel level) {
    std::vector<const std::uint8_t*> key_ptrs(count);
    std::vector<std::size_t> key_lens(count);
    for (std::size_t i = 0; i < count; ++i) {
      key_ptrs[i] = keys[i].data();
      key_lens[i] = keys[i].size();
    }
    hmac_midstate_many(key_ptrs.data(), key_lens.data(), count, midstates.data());
    for (std::size_t i = 0; i < count; ++i) midstate_ptrs[i] = &midstates[i];
    std::vector<Sha256::Digest> got(count);
    hmac_sha256_many(midstate_ptrs.data(), msg_ptrs.data(), lens.data(), count,
                     got.data());
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(got[i], expected[i])
          << "level=" << cpu_level_name(level) << " lane=" << i;
  });
}

TEST(WrapDifferential, DeriveWrapNoncesMatchesScalar) {
  Rng rng(0x40CE);
  const std::size_t count = 77;
  std::vector<WrapNonceSpec> specs(count);
  std::vector<WrapNonce> expected(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs[i] = WrapNonceSpec{rng(), make_key_id(rng()),
                             static_cast<std::uint32_t>(rng())};
    expected[i] = derive_wrap_nonce(specs[i].epoch, specs[i].dest, specs[i].index);
  }
  for_each_level([&](CpuLevel level) {
    std::vector<WrapNonce> got(count);
    derive_wrap_nonces(specs, got.data());
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(got[i], expected[i])
          << "level=" << cpu_level_name(level) << " i=" << i;
  });
}

void expect_wrapped_equal(const WrappedKey& got, const WrappedKey& want,
                          const std::string& context) {
  EXPECT_EQ(got.target_id, want.target_id) << context;
  EXPECT_EQ(got.target_version, want.target_version) << context;
  EXPECT_EQ(got.wrapping_id, want.wrapping_id) << context;
  EXPECT_EQ(got.wrapping_version, want.wrapping_version) << context;
  EXPECT_EQ(got.nonce, want.nonce) << context;
  EXPECT_EQ(got.ciphertext, want.ciphertext) << context;
  EXPECT_EQ(got.tag, want.tag) << context;
}

// The engine's shape: every request under a different KEK. Batch output must
// match per-request scalar wraps at every level, and still unwrap.
TEST(WrapDifferential, HeterogeneousBatchMatchesScalarWraps) {
  Rng rng(0x88A9);
  const std::size_t count = 67;  // chunk remainder + lane remainder
  std::vector<Key128> keks(count);
  std::vector<Key128> payloads(count);
  std::vector<KeyedWrapRequest> requests(count);
  std::vector<WrappedKey> expected(count);

  for (std::size_t i = 0; i < count; ++i) {
    keks[i] = Key128::random(rng);
    payloads[i] = Key128::random(rng);
    requests[i] =
        KeyedWrapRequest{&keks[i],           make_key_id(1000 + i),
                         static_cast<std::uint32_t>(i), &payloads[i],
                         make_key_id(2000 + i), static_cast<std::uint32_t>(i + 7),
                         random_nonce(rng)};
  }
  force_cpu_level(CpuLevel::kScalar);
  for (std::size_t i = 0; i < count; ++i) {
    const KeyedWrapRequest& r = requests[i];
    expected[i] = PreparedKek(*r.kek).wrap(r.wrapping_id, r.wrapping_version,
                                           *r.payload, r.target_id, r.target_version,
                                           r.nonce);
  }

  for_each_level([&](CpuLevel level) {
    std::vector<WrappedKey> got(count);
    wrap_keys_batch(std::span<const KeyedWrapRequest>(requests),
                    std::span<WrappedKey>(got));
    for (std::size_t i = 0; i < count; ++i) {
      expect_wrapped_equal(got[i], expected[i],
                           std::string("level=") + cpu_level_name(level) +
                               " i=" + std::to_string(i));
      const auto unwrapped = unwrap_key(keks[i], got[i]);
      ASSERT_TRUE(unwrapped.has_value());
      EXPECT_EQ(*unwrapped, payloads[i]);
    }
  });
}

TEST(WrapDifferential, PrepareManyMatchesScalarConstructor) {
  Rng rng(0x88AA);
  const std::size_t count = 19;
  std::vector<Key128> keks(count);
  std::vector<const Key128*> kek_ptrs(count);
  for (std::size_t i = 0; i < count; ++i) {
    keks[i] = Key128::random(rng);
    kek_ptrs[i] = &keks[i];
  }
  const Key128 payload = Key128::random(rng);
  const WrapNonce nonce = random_nonce(rng);

  for_each_level([&](CpuLevel level) {
    std::vector<PreparedKek> prepared(count);
    PreparedKek::prepare_many(kek_ptrs.data(), count, prepared.data());
    for (std::size_t i = 0; i < count; ++i) {
      const auto got = prepared[i].wrap(make_key_id(1), 2, payload, make_key_id(3), 4,
                                        nonce);
      const auto want = PreparedKek(keks[i]).wrap(make_key_id(1), 2, payload,
                                                  make_key_id(3), 4, nonce);
      expect_wrapped_equal(got, want, std::string("level=") + cpu_level_name(level) +
                                          " i=" + std::to_string(i));
    }
  });
}

TEST(WrapDifferential, SharedKekBatchMatchesScalarLoop) {
  Rng rng(0x88AB);
  const Key128 kek = Key128::random(rng);
  const std::size_t count = 130;  // two chunks + remainder
  std::vector<WrapRequest> requests(count);
  std::vector<WrappedKey> expected(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests[i] = WrapRequest{Key128::random(rng), make_key_id(i),
                              static_cast<std::uint32_t>(i), random_nonce(rng)};
  }
  force_cpu_level(CpuLevel::kScalar);
  {
    const PreparedKek prepared(kek);
    for (std::size_t i = 0; i < count; ++i)
      expected[i] = prepared.wrap(make_key_id(9), 9, requests[i].payload,
                                  requests[i].target_id, requests[i].target_version,
                                  requests[i].nonce);
  }

  for_each_level([&](CpuLevel level) {
    std::vector<WrappedKey> got(count);
    wrap_keys_batch(kek, make_key_id(9), 9, std::span<const WrapRequest>(requests),
                    std::span<WrappedKey>(got));
    for (std::size_t i = 0; i < count; ++i)
      expect_wrapped_equal(got[i], expected[i],
                           std::string("level=") + cpu_level_name(level) +
                               " i=" + std::to_string(i));
  });
}

}  // namespace
}  // namespace gk::crypto
