#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "faultsim/fault_schedule.h"
#include "faultsim/harness.h"
#include "netsim/receiver.h"
#include "partition/journaled_server.h"
#include "partition/one_keytree_server.h"
#include "partition/server.h"
#include "transport/resync.h"
#include "wire/journal.h"

namespace gk::faultsim {
namespace {

using gk::ContractViolation;

workload::MemberProfile profile_of(std::uint64_t id, double loss = 0.05) {
  workload::MemberProfile profile;
  profile.id = workload::make_member_id(id);
  profile.loss_rate = loss;
  return profile;
}

HarnessConfig base_config(ServerKind kind, std::uint64_t seed) {
  HarnessConfig config;
  config.kind = kind;
  config.seed = seed;
  config.initial_members = 20;
  config.joins_per_epoch = 2;
  config.leaves_per_epoch = 2;
  config.epochs = 14;
  config.checkpoint_every = 4;
  return config;
}

const ServerKind kAllKinds[] = {ServerKind::kOneKeyTree, ServerKind::kQt,
                                ServerKind::kTt, ServerKind::kLossHomogenized};

// ---------------------------------------------------------------- schedule

TEST(FaultSchedule, DecisionsAreDeterministicAndOrderIndependent) {
  FaultConfig config;
  config.seed = 99;
  config.message_drop = 0.5;
  config.member_crash = 0.5;
  const FaultSchedule a(config);
  const FaultSchedule b(config);
  // Query b in reverse order: hash-based decisions must not depend on
  // query order (a recovered server re-queries in a different order).
  std::vector<bool> forward;
  for (std::uint64_t e = 0; e < 20; ++e)
    for (std::uint64_t m = 1; m <= 10; ++m)
      forward.push_back(a.message_dropped(e, workload::make_member_id(m)));
  std::vector<bool> reverse;
  for (std::uint64_t e = 20; e-- > 0;)
    for (std::uint64_t m = 10; m >= 1; --m)
      reverse.push_back(b.message_dropped(e, workload::make_member_id(m)));
  std::reverse(reverse.begin(), reverse.end());
  // reverse iterated members descending within each epoch; rebuild exactly.
  std::vector<bool> again;
  for (std::uint64_t e = 0; e < 20; ++e)
    for (std::uint64_t m = 1; m <= 10; ++m)
      again.push_back(b.message_dropped(e, workload::make_member_id(m)));
  EXPECT_EQ(forward, again);
}

TEST(FaultSchedule, ProbabilityEndpointsAreExact) {
  FaultConfig never;
  never.seed = 1;
  const FaultSchedule off(never);
  FaultConfig always = never;
  always.server_crash = 1.0;
  always.message_drop = 1.0;
  always.member_crash = 1.0;
  const FaultSchedule on(always);
  for (std::uint64_t e = 0; e < 50; ++e) {
    EXPECT_FALSE(off.server_crashes(e));
    EXPECT_TRUE(on.server_crashes(e));
    EXPECT_FALSE(off.message_dropped(e, workload::make_member_id(e + 1)));
    EXPECT_TRUE(on.message_dropped(e, workload::make_member_id(e + 1)));
  }
}

TEST(FaultSchedule, RejoinDelayStaysWithinConfiguredBounds) {
  FaultConfig config;
  config.seed = 7;
  config.min_rejoin_delay = 2;
  config.max_rejoin_delay = 5;
  const FaultSchedule schedule(config);
  for (std::uint64_t e = 0; e < 200; ++e) {
    const auto delay = schedule.rejoin_delay(e, workload::make_member_id(e + 1));
    EXPECT_GE(delay, 2u);
    EXPECT_LE(delay, 5u);
  }
}

TEST(FaultSchedule, ApproximatesConfiguredRate) {
  FaultConfig config;
  config.seed = 13;
  config.message_drop = 0.3;
  const FaultSchedule schedule(config);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (schedule.message_dropped(static_cast<std::uint64_t>(i) / 100,
                                 workload::make_member_id(
                                     static_cast<std::uint64_t>(1 + i % 100))))
      ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

// ----------------------------------------------------------------- journal

TEST(Journal, RoundTripPreservesOpsInOrder) {
  wire::RekeyJournal journal;
  const std::vector<std::uint8_t> base{1, 2, 3, 4};
  journal.checkpoint(base);
  journal.record_join(profile_of(10));
  journal.record_join_ack(crypto::make_key_id(77));
  journal.record_leave(workload::make_member_id(4));
  journal.record_commit_begin(5);
  journal.record_commit_end(5);

  const auto replay = wire::RekeyJournal::parse(journal.bytes());
  EXPECT_EQ(replay.base_state, base);
  ASSERT_EQ(replay.ops.size(), 3u);
  EXPECT_EQ(replay.ops[0].kind, wire::RekeyJournal::Op::Kind::kJoin);
  EXPECT_EQ(workload::raw(replay.ops[0].profile.id), 10u);
  ASSERT_TRUE(replay.ops[0].granted_leaf.has_value());
  EXPECT_EQ(crypto::raw(*replay.ops[0].granted_leaf), 77u);
  EXPECT_EQ(replay.ops[1].kind, wire::RekeyJournal::Op::Kind::kLeave);
  EXPECT_EQ(workload::raw(replay.ops[1].member), 4u);
  EXPECT_EQ(replay.ops[2].kind, wire::RekeyJournal::Op::Kind::kCommit);
  EXPECT_TRUE(replay.ops[2].commit_finished);
  EXPECT_FALSE(replay.interrupted_commit);
}

TEST(Journal, UnmatchedCommitBeginMarksInterruption) {
  wire::RekeyJournal journal;
  journal.checkpoint(std::vector<std::uint8_t>{9});
  journal.record_commit_begin(3);

  const auto replay = wire::RekeyJournal::parse(journal.bytes());
  EXPECT_TRUE(replay.interrupted_commit);
  EXPECT_EQ(replay.interrupted_epoch, 3u);
  ASSERT_EQ(replay.ops.size(), 1u);
  EXPECT_FALSE(replay.ops[0].commit_finished);
}

TEST(Journal, TornFinalRecordIsDiscardedNotFatal) {
  wire::RekeyJournal journal;
  journal.checkpoint(std::vector<std::uint8_t>{9});
  journal.record_leave(workload::make_member_id(1));
  journal.record_join(profile_of(2));
  const auto full = journal.bytes();

  // Chop bytes off the tail: every prefix must parse to some prefix of the
  // ops (a torn final record is dropped, completed records survive).
  const auto baseline = wire::RekeyJournal::parse(full).ops.size();
  ASSERT_EQ(baseline, 2u);
  for (std::size_t cut = 1; cut < 30 && cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> torn(full.data(), full.size() - cut);
    const auto replay = wire::RekeyJournal::parse(torn);
    EXPECT_LE(replay.ops.size(), baseline);
  }
}

TEST(Journal, StructuralCorruptionThrows) {
  wire::RekeyJournal journal;
  journal.checkpoint(std::vector<std::uint8_t>{9});
  journal.record_leave(workload::make_member_id(1));
  auto bytes = journal.bytes();
  bytes[bytes.size() - 9] = 'Z';  // clobber the record tag
  EXPECT_THROW((void)wire::RekeyJournal::parse(bytes), ContractViolation);

  std::vector<std::uint8_t> not_a_journal{'n', 'o', 'p', 'e'};
  EXPECT_THROW((void)wire::RekeyJournal::parse(not_a_journal), ContractViolation);
}

// ---------------------------------------------------------- durable servers

TEST(DurableServers, SaveRestoreRoundTripsExactFutureBehaviour) {
  for (const auto kind : kAllKinds) {
    auto config = base_config(kind, 11);
    auto original = make_harness_server(config);
    for (std::uint64_t m = 1; m <= 17; ++m)
      (void)original->join(profile_of(m, 0.01 * static_cast<double>(m)));
    (void)original->end_epoch();
    original->leave(workload::make_member_id(3));
    (void)original->end_epoch();

    auto clone = make_harness_server(config);
    clone->restore_state(original->save_state());
    EXPECT_EQ(clone->size(), original->size());
    EXPECT_EQ(clone->group_key_id(), original->group_key_id());
    EXPECT_EQ(clone->group_key().version, original->group_key().version);
    EXPECT_EQ(clone->group_key().key, original->group_key().key);

    // The real property: both servers now produce *identical* futures —
    // same grants, same ids, same key bytes — because RNG streams and the
    // id watermark are part of the state.
    for (std::uint64_t m = 100; m < 104; ++m) {
      const auto a = original->join(profile_of(m));
      const auto b = clone->join(profile_of(m));
      EXPECT_EQ(a.leaf_id, b.leaf_id);
      EXPECT_EQ(a.individual_key, b.individual_key);
    }
    original->leave(workload::make_member_id(7));
    clone->leave(workload::make_member_id(7));
    const auto out_a = original->end_epoch();
    const auto out_b = clone->end_epoch();
    EXPECT_EQ(out_a.message.wraps.size(), out_b.message.wraps.size());
    EXPECT_EQ(original->group_key().key, clone->group_key().key);
    EXPECT_EQ(original->group_key().version, clone->group_key().version);
  }
}

TEST(DurableServers, RestoreRejectsMismatchedConfiguration) {
  auto config = base_config(ServerKind::kOneKeyTree, 3);
  auto server = make_harness_server(config);
  (void)server->join(profile_of(1));
  (void)server->end_epoch();
  const auto state = server->save_state();

  auto wrong_degree = std::make_unique<partition::OneKeyTreeServer>(8, Rng(3));
  EXPECT_THROW(wrong_degree->restore_state(state), ContractViolation);
}

TEST(DurableServers, SaveStateRequiresCommittedState) {
  auto server = make_harness_server(base_config(ServerKind::kTt, 5));
  (void)server->join(profile_of(1));
  EXPECT_THROW((void)server->save_state(), ContractViolation);
}

// ----------------------------------------------------------------- resync

TEST(Resync, LossFreeChannelDeliversOnFirstAttempt) {
  Rng rng(17);
  const auto individual = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> bundle;
  for (std::uint64_t i = 0; i < 5; ++i)
    bundle.push_back(crypto::wrap_key(individual, crypto::make_key_id(1), 0,
                                      crypto::Key128::random(rng),
                                      crypto::make_key_id(10 + i), 1, rng));
  netsim::Receiver channel(workload::make_member_id(1), 0.0, rng.fork());
  const auto report = transport::run_resync(bundle, channel, {});
  EXPECT_TRUE(report.delivered);
  EXPECT_FALSE(report.evicted);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(report.key_transmissions, bundle.size());
  EXPECT_EQ(report.rounds_waited, 0u);
}

TEST(Resync, UnreachableMemberIsEvictedAfterRetryBudgetWithCappedBackoff) {
  Rng rng(18);
  const auto individual = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> bundle;
  for (std::uint64_t i = 0; i < 4; ++i)
    bundle.push_back(crypto::wrap_key(individual, crypto::make_key_id(1), 0,
                                      crypto::Key128::random(rng),
                                      crypto::make_key_id(10 + i), 1, rng));
  // A channel this lossy will not deliver 4/4 keys in 6 single-packet
  // attempts at this seed; the run is deterministic, so the assertion is
  // stable.
  netsim::Receiver channel(workload::make_member_id(1), 0.99, Rng(1234));
  transport::ResyncConfig config;
  config.retry_budget = 6;
  config.base_backoff_rounds = 1;
  config.max_backoff_rounds = 4;
  const auto report = transport::run_resync(bundle, channel, config);
  EXPECT_TRUE(report.evicted);
  EXPECT_FALSE(report.delivered);
  EXPECT_EQ(report.attempts, 6u);
  // Backoffs after attempts 1..5: 1, 2, 4, 4, 4 (capped at 4).
  EXPECT_EQ(report.rounds_waited, 15u);
}

TEST(Resync, EmptyBundleIsTriviallyDelivered) {
  netsim::Receiver channel(workload::make_member_id(1), 0.5, Rng(1));
  const auto report = transport::run_resync({}, channel, {});
  EXPECT_TRUE(report.delivered);
  EXPECT_EQ(report.packets_sent, 0u);
}

// ------------------------------------------- the acceptance property test

TEST(CrashRecovery, RecoveredServerConvergesToCrashFreeGroupKeys) {
  // The tentpole property: for every scheme, a server that crashes
  // mid-commit EVERY epoch and recovers from its journal produces the exact
  // same group key bytes, every epoch, as a server that never crashes.
  for (const auto kind : kAllKinds) {
    for (const std::uint64_t seed : {1ULL, 7ULL}) {
      auto clean = base_config(kind, seed);
      auto crashy = clean;
      crashy.faults.server_crash = 1.0;

      const auto a = run_harness(clean);
      const auto b = run_harness(crashy);

      EXPECT_EQ(b.server_crashes, crashy.epochs);
      EXPECT_EQ(b.recoveries, crashy.epochs);
      ASSERT_EQ(a.group_key_history.size(), b.group_key_history.size());
      for (std::size_t e = 0; e < a.group_key_history.size(); ++e) {
        ASSERT_EQ(a.group_key_history[e].version, b.group_key_history[e].version)
            << "kind " << static_cast<int>(kind) << " seed " << seed << " epoch "
            << e;
        ASSERT_EQ(a.group_key_history[e].key, b.group_key_history[e].key)
            << "kind " << static_cast<int>(kind) << " seed " << seed << " epoch "
            << e;
      }
      // And the runs agree on everything else the members saw.
      EXPECT_EQ(a.multicast_key_transmissions, b.multicast_key_transmissions);
      EXPECT_EQ(a.final_group_size, b.final_group_size);
    }
  }
}

TEST(CrashRecovery, JournaledServerRecoversMidBatchWithoutCrash) {
  // Direct journal-layer check, no harness: stage a batch, crash before
  // commit, recover, and compare the pending message with the crash-free
  // twin's output wrap for wrap.
  auto make = [] {
    return std::make_unique<partition::OneKeyTreeServer>(3, Rng(42));
  };
  partition::JournaledServer::Config config;
  config.checkpoint_every = 2;
  partition::JournaledServer twin(make(), config);
  partition::JournaledServer victim(make(), config);
  for (std::uint64_t m = 1; m <= 9; ++m) {
    (void)twin.join(profile_of(m));
    (void)victim.join(profile_of(m));
  }
  (void)twin.end_epoch();
  (void)victim.end_epoch();
  twin.leave(workload::make_member_id(2));
  victim.leave(workload::make_member_id(2));
  (void)twin.join(profile_of(20));
  (void)victim.join(profile_of(20));

  const auto expected = twin.end_epoch();
  victim.arm_crash_before_commit();
  EXPECT_THROW((void)victim.end_epoch(), partition::ServerCrashed);

  const std::vector<std::uint8_t> journal = victim.journal_bytes();
  auto recovery = partition::JournaledServer::recover(journal, make(), config);
  ASSERT_TRUE(recovery.pending.has_value());
  ASSERT_EQ(recovery.pending->message.wraps.size(), expected.message.wraps.size());
  for (std::size_t w = 0; w < expected.message.wraps.size(); ++w) {
    EXPECT_EQ(recovery.pending->message.wraps[w].target_id,
              expected.message.wraps[w].target_id);
    EXPECT_EQ(recovery.pending->message.wraps[w].wrapping_id,
              expected.message.wraps[w].wrapping_id);
  }
  EXPECT_EQ(recovery.server->group_key().key, twin.group_key().key);
  EXPECT_EQ(recovery.server->group_key().version, twin.group_key().version);

  // The recovered server keeps marching in lockstep with the twin.
  (void)twin.join(profile_of(21));
  (void)recovery.server->join(profile_of(21));
  (void)twin.end_epoch();
  (void)recovery.server->end_epoch();
  EXPECT_EQ(recovery.server->group_key().key, twin.group_key().key);
}

// ------------------------------------------------------------ fault sweeps

TEST(FaultSweep, InvariantsHoldForEveryEpochUnderCombinedFaults) {
  // run_harness throws ContractViolation at the first violated invariant,
  // so completing a sweep IS the assertion; the counters prove the faults
  // actually fired.
  for (const auto kind : kAllKinds) {
    for (const std::uint64_t seed : {3ULL, 5ULL}) {
      auto config = base_config(kind, seed);
      config.epochs = 12;
      config.faults.seed = seed * 1000;
      config.faults.server_crash = 0.25;
      config.faults.message_drop = 0.15;
      config.faults.message_duplicate = 0.10;
      config.faults.message_reorder = 0.20;
      config.faults.member_crash = 0.08;
      config.member_loss = 0.1;

      const auto result = run_harness(config);
      EXPECT_EQ(result.invariant_checks, config.epochs);
      EXPECT_EQ(result.epochs.size(), config.epochs);
      EXPECT_GT(result.resyncs + result.server_crashes + result.member_crashes, 0u)
          << "sweep injected no faults; raise the rates";
      EXPECT_EQ(result.server_crashes, result.recoveries);
    }
  }
}

TEST(FaultSweep, MemberCrashesRejoinThroughResync) {
  auto config = base_config(ServerKind::kOneKeyTree, 9);
  config.faults.member_crash = 0.2;
  config.faults.min_rejoin_delay = 1;
  config.faults.max_rejoin_delay = 2;
  config.member_loss = 0.05;
  const auto result = run_harness(config);
  EXPECT_GT(result.member_crashes, 0u);
  EXPECT_GT(result.rejoins, 0u);
  EXPECT_GT(result.resyncs, 0u);
  EXPECT_GT(result.resync_key_transmissions, 0u);
}

TEST(FaultSweep, HopelessChannelsEvictStragglersInsteadOfStallingTheGroup) {
  auto config = base_config(ServerKind::kOneKeyTree, 4);
  config.faults.message_drop = 0.5;
  config.member_loss = 0.97;  // resync unicast is all but dead
  config.resync.retry_budget = 2;
  const auto result = run_harness(config);
  EXPECT_GT(result.resyncs_failed, 0u);
  EXPECT_GT(result.stragglers_evicted, 0u);
  // The group itself kept rekeying every epoch regardless.
  EXPECT_EQ(result.epochs.size(), config.epochs);
  EXPECT_EQ(result.invariant_checks, config.epochs);
}

TEST(FaultSweep, CleanRunHasNoFaultArtifacts) {
  auto config = base_config(ServerKind::kQt, 2);
  const auto result = run_harness(config);
  EXPECT_EQ(result.server_crashes, 0u);
  EXPECT_EQ(result.member_crashes, 0u);
  EXPECT_EQ(result.resyncs, 0u);
  EXPECT_EQ(result.stragglers_evicted, 0u);
  EXPECT_EQ(result.invariant_checks, config.epochs);
  EXPECT_EQ(result.resync_key_transmissions, 0u);
}

}  // namespace
}  // namespace gk::faultsim
