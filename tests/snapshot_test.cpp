#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "lkh/key_ring.h"
#include "lkh/key_tree.h"
#include "lkh/snapshot.h"

namespace gk::lkh {
namespace {

using workload::make_member_id;

KeyTree busy_tree(std::map<std::uint64_t, KeyRing>* rings = nullptr) {
  KeyTree tree(3, Rng(808));
  for (std::uint64_t i = 0; i < 40; ++i) {
    const auto grant = tree.insert(make_member_id(i));
    if (rings != nullptr)
      rings->emplace(i, KeyRing(make_member_id(i), grant.leaf_id,
                                grant.individual_key));
  }
  auto setup = tree.commit(0);
  if (rings != nullptr)
    for (auto& [id, ring] : *rings) ring.process(setup);
  for (std::uint64_t i = 0; i < 10; ++i) tree.remove(make_member_id(i * 3));
  auto churn = tree.commit(1);
  if (rings != nullptr) {
    for (std::uint64_t i = 0; i < 10; ++i) rings->erase(i * 3);
    for (auto& [id, ring] : *rings) ring.process(churn);
  }
  return tree;
}

TEST(Snapshot, RoundTripPreservesStructure) {
  auto tree = busy_tree();
  const auto bytes = snapshot_tree(tree);
  auto restored = restore_tree(bytes, Rng(1));

  EXPECT_EQ(restored.size(), tree.size());
  EXPECT_EQ(restored.degree(), tree.degree());
  EXPECT_EQ(restored.root_id(), tree.root_id());
  EXPECT_EQ(restored.root_key().version, tree.root_key().version);
  EXPECT_EQ(restored.root_key().key, tree.root_key().key);
  for (const auto member : tree.members()) {
    EXPECT_TRUE(restored.contains(member));
    EXPECT_EQ(restored.individual_key(member), tree.individual_key(member));
    EXPECT_EQ(restored.leaf_id(member), tree.leaf_id(member));
    EXPECT_EQ(restored.path_ids(member), tree.path_ids(member));
  }
  const auto a = tree.stats();
  const auto b = restored.stats();
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(a.node_count, b.node_count);
}

TEST(Snapshot, RestoredServerContinuesTheSession) {
  // The acid test: members provisioned by the original server keep working
  // against rekey messages emitted by the restored server.
  std::map<std::uint64_t, KeyRing> rings;
  auto tree = busy_tree(&rings);
  const auto bytes = snapshot_tree(tree);
  auto restored = restore_tree(bytes, Rng(2));

  restored.remove(make_member_id(4));
  rings.erase(4);
  restored.insert(make_member_id(100));
  const auto message = restored.commit(2);
  for (auto& [id, ring] : rings) {
    ring.process(message);
    EXPECT_TRUE(ring.holds(restored.root_id(), restored.root_key().version))
        << "member " << id;
  }
}

TEST(Snapshot, FreshIdsDoNotCollide) {
  auto tree = busy_tree();
  const auto bytes = snapshot_tree(tree);
  auto restored = restore_tree(bytes, Rng(3));

  std::vector<std::uint64_t> existing;
  for (const auto member : restored.members())
    existing.push_back(crypto::raw(restored.leaf_id(member)));
  const auto grant = restored.insert(make_member_id(777));
  for (const auto id : existing) EXPECT_NE(crypto::raw(grant.leaf_id), id);
}

TEST(Snapshot, RefusesDirtyTree) {
  KeyTree tree(3, Rng(4));
  tree.insert(make_member_id(1));
  EXPECT_THROW((void)snapshot_tree(tree), ContractViolation);
}

TEST(Snapshot, RejectsGarbage) {
  const std::vector<std::uint8_t> garbage{'N', 'O', 'P', 'E', 0, 0, 0, 0};
  EXPECT_THROW((void)restore_tree(garbage, Rng(5)), ContractViolation);
}

TEST(Snapshot, RejectsTruncation) {
  auto tree = busy_tree();
  auto bytes = snapshot_tree(tree);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)restore_tree(bytes, Rng(6)), ContractViolation);
}

TEST(Snapshot, RejectsTrailingBytes) {
  auto tree = busy_tree();
  auto bytes = snapshot_tree(tree);
  bytes.push_back(0xab);
  EXPECT_THROW((void)restore_tree(bytes, Rng(7)), ContractViolation);
}

TEST(Snapshot, EmptyTreeRoundTrips) {
  KeyTree tree(4, Rng(8));
  const auto bytes = snapshot_tree(tree);
  auto restored = restore_tree(bytes, Rng(9));
  EXPECT_TRUE(restored.empty());
  restored.insert(make_member_id(1));
  EXPECT_EQ(restored.commit(0).cost(), 1u);
}

}  // namespace
}  // namespace gk::lkh
