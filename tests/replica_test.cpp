// Replication layer: journal shipping, standby replay, deterministic
// election, and the byte-identical standby property across schemes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "partition/factory.h"
#include "partition/journaled_server.h"
#include "replica/cluster.h"
#include "replica/election.h"
#include "replica/ship.h"
#include "replica/standby.h"
#include "wire/error.h"
#include "wire/journal.h"
#include "wire/record.h"

namespace gk {
namespace {

workload::MemberProfile profile_for(std::uint64_t id, double epoch = 0.0) {
  workload::MemberProfile profile;
  profile.id = workload::make_member_id(id);
  profile.member_class =
      id % 2 == 0 ? workload::MemberClass::kShort : workload::MemberClass::kLong;
  profile.join_time = epoch;
  profile.duration = 8.0;
  profile.loss_rate = 0.01;
  return profile;
}

std::unique_ptr<engine::DurableRekeyServer> blank_server(
    const std::string& scheme = "one-tree", std::uint64_t seed = 1) {
  partition::SchemeConfig config;
  config.degree = 3;
  config.s_period_epochs = 2;
  return partition::make_server(scheme, config, Rng(seed));
}

// ---------------------------------------------------------------- journal --

TEST(JournalAccessors, CountsSizeAndCompactionCadence) {
  wire::RekeyJournal journal;
  EXPECT_EQ(journal.record_count(), 0u);
  EXPECT_EQ(journal.commits_since_checkpoint(), 0u);
  EXPECT_EQ(journal.generation(), 0u);
  const auto empty_size = journal.size_bytes();

  journal.record_join(profile_for(1));
  journal.record_join_ack(crypto::make_key_id(11));
  journal.record_leave(workload::make_member_id(9));
  EXPECT_EQ(journal.record_count(), 3u);
  EXPECT_GT(journal.size_bytes(), empty_size);

  journal.record_commit_begin(0);
  journal.record_commit_end(0);
  EXPECT_EQ(journal.commits_since_checkpoint(), 1u);
  EXPECT_FALSE(journal.wants_checkpoint(2));
  EXPECT_FALSE(journal.wants_checkpoint(0));  // 0 = never compact
  journal.record_commit_begin(1);
  journal.record_commit_end(1);
  EXPECT_TRUE(journal.wants_checkpoint(2));

  const std::vector<std::uint8_t> state{1, 2, 3};
  journal.checkpoint(state);
  EXPECT_EQ(journal.generation(), 1u);
  EXPECT_EQ(journal.record_count(), 0u);
  EXPECT_EQ(journal.commits_since_checkpoint(), 0u);
  EXPECT_FALSE(journal.wants_checkpoint(2));
}

TEST(JournalAccessors, AutoCompactionBoundsJournalAndRestampsTerm) {
  partition::JournaledServer::Config config;
  config.checkpoint_every = 2;
  partition::JournaledServer server(blank_server(), config);
  server.set_term(5);

  std::uint64_t next = 1;
  std::size_t max_size = 0;
  for (int epoch = 0; epoch < 9; ++epoch) {
    (void)server.join(profile_for(next++, epoch));
    (void)server.end_epoch();
    max_size = std::max(max_size, server.journal().size_bytes());
  }
  // 9 commits at a 2-commit cadence: four compactions happened and the
  // journal never kept more than ~2 epochs of tail.
  EXPECT_EQ(server.journal().generation(), 5u);
  EXPECT_LT(server.journal().commits_since_checkpoint(), 2u);

  // The compacted stream re-declares its term so shipped checkpoints carry
  // provenance, and replaying it yields the same term.
  const auto replay = wire::RekeyJournal::parse(server.journal_bytes());
  EXPECT_EQ(replay.last_term, 5u);

  partition::JournaledServer::Config no_compaction;
  no_compaction.checkpoint_every = 0;
  partition::JournaledServer unbounded(blank_server(), no_compaction);
  std::uint64_t next2 = 1;
  for (int epoch = 0; epoch < 9; ++epoch) {
    (void)unbounded.join(profile_for(next2++, epoch));
    (void)unbounded.end_epoch();
  }
  EXPECT_EQ(unbounded.journal().generation(), 1u);
  EXPECT_GT(unbounded.journal().size_bytes(), max_size);
}

// -------------------------------------------------------------- ship codec --

TEST(ShipFrameCodec, RoundTripsAllFields) {
  replica::ShipFrame frame;
  frame.kind = replica::ShipFrame::Kind::kDelta;
  frame.term = 7;
  frame.generation = 3;
  frame.offset = 1234;
  frame.payload = {0xde, 0xad, 0xbe, 0xef};

  const auto bytes = replica::encode_frame(frame);
  const auto decoded = replica::decode_frame(bytes);
  EXPECT_EQ(decoded.kind, frame.kind);
  EXPECT_EQ(decoded.term, frame.term);
  EXPECT_EQ(decoded.generation, frame.generation);
  EXPECT_EQ(decoded.offset, frame.offset);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(ShipFrameCodec, EveryBitFlipAndTruncationFailsLoudly) {
  replica::ShipFrame frame;
  frame.kind = replica::ShipFrame::Kind::kCheckpoint;
  frame.term = 2;
  frame.generation = 1;
  frame.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto bytes = replica::encode_frame(frame);

  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto damaged = bytes;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW((void)replica::decode_frame(damaged), wire::WireError) << "bit " << bit;
  }
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const std::vector<std::uint8_t> torn(bytes.begin(),
                                         bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)replica::decode_frame(torn), wire::WireError) << "keep " << keep;
  }
}

// --------------------------------------------------------------- election --

TEST(Election, MostAdvancedReplicaWinsAndTermIncrements) {
  const std::vector<replica::Candidate> candidates{
      {1, 10, 500}, {2, 12, 100}, {3, 12, 400}, {4, 11, 900}};
  const auto result = replica::elect_leader(candidates, 6);
  EXPECT_EQ(result.leader, 3u);  // highest epoch, then longest journal
  EXPECT_EQ(result.term, 7u);
}

TEST(Election, LowestNodeBreaksExactTies) {
  const std::vector<replica::Candidate> candidates{{5, 4, 40}, {2, 4, 40}, {9, 4, 40}};
  EXPECT_EQ(replica::elect_leader(candidates, 0).leader, 2u);
}

TEST(Election, NoCandidatesThrows) {
  EXPECT_THROW((void)replica::elect_leader({}, 1), ContractViolation);
}

// ---------------------------------------------------------------- shipper --

TEST(JournalShipper, CutsDeltasAndFallsBackToCheckpoint) {
  partition::JournaledServer leader(blank_server(), {});
  const replica::JournalShipper shipper(leader);

  // Caught up: nothing to cut.
  EXPECT_FALSE(shipper.next_frame(shipper.head()).has_value());

  const auto before = shipper.head();
  (void)leader.join(profile_for(1));
  const auto delta = shipper.next_frame(before);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->kind, replica::ShipFrame::Kind::kDelta);
  EXPECT_EQ(delta->offset, before.offset);
  EXPECT_EQ(delta->payload.size(), leader.journal().size_bytes() - before.offset);

  // A cursor from another generation can only be healed by a checkpoint.
  const auto stale = shipper.next_frame({before.generation + 7, 0});
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->kind, replica::ShipFrame::Kind::kCheckpoint);
  EXPECT_EQ(stale->offset, 0u);
}

// ---------------------------------------------------------------- standby --

struct Pair {
  partition::JournaledServer leader;
  replica::StandbyReplica standby;

  explicit Pair(partition::JournaledServer::Config config = {})
      : leader(blank_server(), config), standby(1, blank_server()) {
    leader.set_term(1);
    sync();
  }

  /// Ship whatever the standby is missing, on a clean channel.
  void sync() {
    const replica::JournalShipper shipper(leader);
    while (const auto frame = shipper.next_frame(standby.cursor())) {
      const auto offer = standby.offer(replica::encode_frame(*frame));
      ASSERT_NE(offer, replica::StandbyReplica::Offer::kRejectedStale);
      if (offer == replica::StandbyReplica::Offer::kNeedCheckpoint) {
        ASSERT_EQ(standby.offer(replica::encode_frame(shipper.checkpoint_frame())),
                  replica::StandbyReplica::Offer::kApplied);
      }
    }
  }
};

TEST(StandbyReplica, FollowsLeaderByteIdenticallyAcrossCommits) {
  Pair pair;
  std::uint64_t next = 1;
  for (int epoch = 0; epoch < 12; ++epoch) {
    (void)pair.leader.join(profile_for(next++, epoch));
    pair.sync();
    if (epoch > 2 && epoch % 3 == 0) {
      pair.leader.leave(workload::make_member_id(next - 3));
      pair.sync();
    }
    (void)pair.leader.end_epoch();
    pair.sync();
    ASSERT_EQ(pair.standby.state_bytes(), pair.leader.durable().save_state())
        << "diverged after epoch " << epoch;
  }
  EXPECT_GE(pair.standby.stats().digest_checks, 10u);
  EXPECT_EQ(pair.standby.applied_epoch(), pair.leader.durable().epoch());
}

TEST(StandbyReplica, EagerCommitMatchesJournalRecoveryByteForByte) {
  Pair pair;
  std::uint64_t next = 1;
  for (int epoch = 0; epoch < 3; ++epoch) {
    (void)pair.leader.join(profile_for(next++, epoch));
    pair.sync();
    (void)pair.leader.end_epoch();
    pair.sync();
  }
  (void)pair.leader.join(profile_for(next++, 3.0));
  pair.sync();
  pair.leader.arm_crash_before_commit();
  EXPECT_THROW((void)pair.leader.end_epoch(), partition::ServerCrashed);
  pair.sync();  // the COMMIT_BEGIN tail reached the pipe before the death

  // Crash recovery replays the same journal into a blank server; the
  // promoted standby must hold the exact same state and pending epoch.
  auto recovery =
      partition::JournaledServer::recover(pair.leader.journal_bytes(), blank_server(), {});
  ASSERT_TRUE(recovery.pending.has_value());

  auto promotion = pair.standby.promote(2, {});
  ASSERT_TRUE(promotion.pending.has_value());
  EXPECT_EQ(promotion.pending->epoch, recovery.pending->epoch);
  EXPECT_EQ(promotion.pending->term, 2u);  // restamped to the elected term
  EXPECT_EQ(wire::RekeyRecord::encode(promotion.pending->message),
            wire::RekeyRecord::encode(recovery.pending->message));
  EXPECT_EQ(promotion.leader->durable().save_state(),
            recovery.server->durable().save_state());
  EXPECT_EQ(promotion.leader->term(), 2u);
}

TEST(StandbyReplica, StaleTermFramesAreRefused) {
  Pair pair;
  const replica::JournalShipper shipper(pair.leader);
  pair.standby.fence(9);
  const auto offer = pair.standby.offer(replica::encode_frame(shipper.checkpoint_frame()));
  EXPECT_EQ(offer, replica::StandbyReplica::Offer::kRejectedStale);
  EXPECT_EQ(pair.standby.stats().stale_frames, 1u);
}

TEST(StandbyReplica, GapsAndCorruptionRequestCheckpointNeverApply) {
  Pair pair;
  const replica::JournalShipper shipper(pair.leader);
  const auto before_gap = pair.standby.cursor();
  (void)pair.leader.join(profile_for(1));
  const auto skipped = shipper.next_frame(before_gap);  // never delivered
  ASSERT_TRUE(skipped.has_value());
  (void)pair.leader.join(profile_for(2));

  // A frame starting beyond the mirrored bytes is a detected gap.
  auto beyond = *shipper.next_frame(pair.standby.cursor());
  beyond.offset += skipped->payload.size();
  beyond.payload.erase(beyond.payload.begin(),
                       beyond.payload.begin() +
                           static_cast<std::ptrdiff_t>(skipped->payload.size()));
  const auto baseline = pair.standby.state_bytes();
  EXPECT_EQ(pair.standby.offer(replica::encode_frame(beyond)),
            replica::StandbyReplica::Offer::kNeedCheckpoint);
  EXPECT_EQ(pair.standby.state_bytes(), baseline);  // nothing applied
  EXPECT_EQ(pair.standby.stats().gap_frames, 1u);

  // Damaged frames never decode, let alone apply.
  auto damaged = replica::encode_frame(*shipper.next_frame(pair.standby.cursor()));
  damaged[damaged.size() / 2] ^= 0x40;
  EXPECT_EQ(pair.standby.offer(damaged),
            replica::StandbyReplica::Offer::kNeedCheckpoint);
  EXPECT_EQ(pair.standby.stats().corrupt_frames, 1u);
  EXPECT_EQ(pair.standby.state_bytes(), baseline);

  // The requested checkpoint heals everything; after the commit lands the
  // standby is byte-identical again.
  EXPECT_EQ(pair.standby.offer(replica::encode_frame(shipper.checkpoint_frame())),
            replica::StandbyReplica::Offer::kApplied);
  EXPECT_GE(pair.standby.stats().checkpoint_catchups, 2u);  // seed + heal
  (void)pair.leader.end_epoch();
  pair.sync();
  EXPECT_EQ(pair.standby.state_bytes(), pair.leader.durable().save_state());
}

TEST(StandbyReplica, DuplicateAndOverlappingDeltasAreBenign) {
  Pair pair;
  const replica::JournalShipper shipper(pair.leader);
  const auto before = pair.standby.cursor();
  (void)pair.leader.join(profile_for(1));
  const auto frame = *shipper.next_frame(before);
  const auto bytes = replica::encode_frame(frame);
  ASSERT_EQ(pair.standby.offer(bytes), replica::StandbyReplica::Offer::kApplied);
  const auto records_before = pair.standby.stats().records_applied;
  // Exact retransmit: benign duplicate, nothing reapplied.
  ASSERT_EQ(pair.standby.offer(bytes), replica::StandbyReplica::Offer::kApplied);
  EXPECT_EQ(pair.standby.stats().duplicate_frames, 1u);
  EXPECT_EQ(pair.standby.stats().records_applied, records_before);
  // Overlapping frame (old offset, longer payload): only the tail applies.
  (void)pair.leader.join(profile_for(2));
  const auto overlapping = *shipper.next_frame(before);
  ASSERT_EQ(pair.standby.offer(replica::encode_frame(overlapping)),
            replica::StandbyReplica::Offer::kApplied);
  EXPECT_EQ(pair.standby.cursor().offset, shipper.head().offset);
  // And the commit on top of all that still lands byte-identically.
  (void)pair.leader.end_epoch();
  pair.sync();
  EXPECT_EQ(pair.standby.state_bytes(), pair.leader.durable().save_state());
}

// ------------------------------------------------------------ rekey record --

TEST(RekeyRecordV2, CarriesTermAndDecodesV1WithoutOne) {
  lkh::RekeyMessage message;
  message.epoch = 41;
  message.group_key_id = crypto::make_key_id(77);
  message.group_key_version = 3;

  const auto v2 = wire::RekeyRecord::encode(message, 6);
  const auto framed = wire::RekeyRecord::decode_framed(v2);
  EXPECT_EQ(framed.term, 6u);
  EXPECT_EQ(framed.message.epoch, 41u);

  // A v1 record is the v2 layout minus the term field: legacy streams keep
  // decoding, with term 0 (never fenced out).
  auto v1 = v2;
  v1[4] = 1;                                    // version byte
  v1.erase(v1.begin() + 13, v1.begin() + 21);   // u64 term after the epoch
  const auto legacy = wire::RekeyRecord::decode_framed(v1);
  EXPECT_EQ(legacy.term, 0u);
  EXPECT_EQ(legacy.message.epoch, 41u);
  EXPECT_EQ(legacy.message.group_key_version, 3u);
}

// ---------------------------------------------------- cluster property runs --

class SchemeCluster : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeCluster,
                         ::testing::Values("one-tree", "qt", "tt", "loss-bin"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST_P(SchemeCluster, HundredEpochsByteIdenticalOnEveryCommit) {
  partition::SchemeConfig scheme_config;
  scheme_config.degree = 3;
  scheme_config.s_period_epochs = 2;
  replica::ReplicaCluster::Config config;
  config.standbys = 2;
  config.journal.checkpoint_every = 8;
  replica::ReplicaCluster cluster(
      [&] { return partition::make_server(GetParam(), scheme_config, Rng(17)); },
      config);

  Rng churn(std::uint64_t{1000003} * static_cast<std::uint8_t>(GetParam()[0]));
  std::vector<std::uint64_t> present;
  std::uint64_t next = 1;
  for (int epoch = 0; epoch < 100; ++epoch) {
    const std::size_t joins = epoch == 0 ? 10 : 1 + churn.uniform_u64(2);
    for (std::size_t j = 0; j < joins; ++j) {
      (void)cluster.join(profile_for(next, epoch));
      present.push_back(next++);
    }
    if (present.size() > 8) {
      const auto pick = churn.uniform_u64(present.size());
      cluster.leave(workload::make_member_id(present[pick]));
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    (void)cluster.end_epoch();
    ASSERT_TRUE(cluster.standbys_identical()) << GetParam() << " epoch " << epoch;
  }
  // The rolling digest verified (nearly) every commit on every standby; the
  // commits it missed fell on compaction epochs, where the shipped
  // checkpoint is itself compared against the standby's own state.
  for (std::size_t s = 0; s < cluster.standby_count(); ++s)
    EXPECT_GE(cluster.standby(s).stats().digest_checks, 80u);
}

TEST(ReplicaCluster, ChannelFaultsHealWithinTheEpoch) {
  replica::ReplicaCluster::Config config;
  config.standbys = 3;
  config.journal.checkpoint_every = 4;
  replica::ReplicaCluster cluster([] { return blank_server("tt", 5); }, config);

  const transport::ShipChannel::Fault faults[] = {
      transport::ShipChannel::Fault::kTear, transport::ShipChannel::Fault::kBitFlip,
      transport::ShipChannel::Fault::kDrop, transport::ShipChannel::Fault::kDelay};
  std::uint64_t next = 1;
  for (int epoch = 0; epoch < 8; ++epoch) {
    cluster.arm_channel_fault(static_cast<std::size_t>(epoch) % 3,
                              faults[static_cast<std::size_t>(epoch) % 4]);
    (void)cluster.join(profile_for(next++, epoch));
    (void)cluster.end_epoch();
    ASSERT_TRUE(cluster.standbys_identical()) << "epoch " << epoch;
  }
  std::size_t damaged = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const auto& stats = cluster.channel_stats(s);
    damaged += stats.torn + stats.flipped + stats.dropped + stats.delayed;
  }
  EXPECT_EQ(damaged, 8u);  // every armed fault actually fired
}

}  // namespace
}  // namespace gk
