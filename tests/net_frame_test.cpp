// net::Frame streaming codec: framing round trips, typed payload bodies,
// and the hostile-stream hardening — oversized and truncated length
// prefixes must surface as typed wire::WireError, never as an allocation
// bomb, an ENSURE abort, or a silently mis-framed stream. The damage
// sweep mirrors fuzz_test's ShippedStreamDamageNeverCorruptsStandby: every
// single-bit corruption of a valid stream either still parses as frames
// (payload damage is the payload parsers' problem, and those throw typed
// errors too) or throws WireError at the framing layer.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/frame.h"
#include "wire/error.h"

namespace gk::net {
namespace {

std::vector<std::uint8_t> concat(std::initializer_list<const Frame*> frames) {
  std::vector<std::uint8_t> stream;
  for (const auto* frame : frames) {
    const auto bytes = encode_frame(frame->type, frame->payload);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  return stream;
}

TEST(NetFrame, RoundTripsEveryBodyType) {
  const auto hello = make_hello({42, kProtocolVersion});
  const auto parsed_hello = parse_hello(hello);
  EXPECT_EQ(parsed_hello.member, 42u);
  EXPECT_EQ(parsed_hello.protocol, kProtocolVersion);

  const auto hello_ack = make_hello_ack({7, 1000});
  const auto parsed_hello_ack = parse_hello_ack(hello_ack);
  EXPECT_EQ(parsed_hello_ack.epoch, 7u);
  EXPECT_EQ(parsed_hello_ack.members, 1000u);

  const auto join = make_join({workload::MemberClass::kLong});
  EXPECT_EQ(parse_join(join).member_class, workload::MemberClass::kLong);

  crypto::Key128 key;
  key.mutable_bytes()[0] = 0x5a;
  const auto join_ack = make_join_ack({99, key});
  const auto parsed_join_ack = parse_join_ack(join_ack);
  EXPECT_EQ(parsed_join_ack.leaf_id, 99u);
  EXPECT_EQ(parsed_join_ack.individual_key, key);

  const auto commit_ack = make_commit_ack({12, 34, 56});
  const auto parsed_commit = parse_commit_ack(commit_ack);
  EXPECT_EQ(parsed_commit.epoch, 12u);
  EXPECT_EQ(parsed_commit.wraps, 34u);
  EXPECT_EQ(parsed_commit.subscribers, 56u);

  ServerCounters counters;
  counters.active_sessions = 1;
  counters.subscribers = 2;
  counters.epochs_committed = 3;
  counters.rekey_bytes_sent = 4;
  const auto stats_ack = make_stats_ack(counters);
  const auto parsed_stats = parse_stats_ack(stats_ack);
  EXPECT_EQ(parsed_stats.active_sessions, 1u);
  EXPECT_EQ(parsed_stats.rekey_bytes_sent, 4u);

  const auto error = make_error(FrameErrorCode::kNotAdmitted, "not yet");
  const auto parsed_error = parse_error(error);
  EXPECT_EQ(parsed_error.code, FrameErrorCode::kNotAdmitted);
  EXPECT_EQ(parsed_error.text, "not yet");
}

TEST(NetFrame, CursorReassemblesArbitraryChunking) {
  const auto a = make_hello({1, kProtocolVersion});
  const auto b = make_error(FrameErrorCode::kRefused, "x");
  const auto c = make_commit_ack({9, 8, 7});
  const auto stream = concat({&a, &b, &c});

  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    FrameCursor cursor;
    std::vector<Frame> got;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const auto chunk = 1 + rng.uniform_u64(5);
      const auto take = std::min<std::size_t>(chunk, stream.size() - offset);
      cursor.feed({stream.data() + offset, take});
      offset += take;
      while (auto frame = cursor.next()) got.push_back(std::move(*frame));
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_TRUE(cursor.at_boundary());
    EXPECT_EQ(got[0].type, FrameType::kHello);
    EXPECT_EQ(got[1].type, FrameType::kError);
    EXPECT_EQ(got[2].type, FrameType::kCommitAck);
    EXPECT_EQ(got[2].payload, c.payload);
  }
}

TEST(NetFrame, RejectsZeroLengthPrefix) {
  const std::vector<std::uint8_t> zeros(4, 0);  // length 0: no type byte
  FrameCursor cursor;
  cursor.feed(zeros);
  EXPECT_THROW((void)cursor.next(), wire::WireError);
}

TEST(NetFrame, RejectsOversizedPrefixBeforeBuffering) {
  // A hostile 4 GiB length prefix must throw immediately, long before any
  // payload arrives — never allocate-and-wait.
  std::vector<std::uint8_t> huge = {0xff, 0xff, 0xff, 0xff};
  FrameCursor cursor;
  cursor.feed(huge);
  try {
    (void)cursor.next();
    FAIL() << "oversized prefix accepted";
  } catch (const wire::WireError& error) {
    EXPECT_EQ(error.fault(), wire::WireFault::kMalformed);
  }
}

TEST(NetFrame, PoisonedCursorStaysPoisoned) {
  std::vector<std::uint8_t> bad = {0, 0, 0, 0};
  FrameCursor cursor;
  cursor.feed(bad);
  EXPECT_THROW((void)cursor.next(), wire::WireError);
  // Even after feeding a perfectly valid frame: framing cannot resync.
  const auto good = make_hello({1, kProtocolVersion});
  cursor.feed(encode_frame(good.type, good.payload));
  EXPECT_THROW((void)cursor.next(), wire::WireError);
}

TEST(NetFrame, OneShotDecodeFlagsTruncation) {
  const auto frame = make_hello_ack({1, 2});
  auto stream = encode_frame(frame.type, frame.payload);
  for (std::size_t cut = 1; cut < stream.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(stream.begin(),
                                           stream.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)decode_frames(prefix), wire::WireError) << "cut " << cut;
  }
  EXPECT_EQ(decode_frames(stream).size(), 1u);
}

TEST(NetFrame, EncodeRejectsOversizedPayload) {
  // Don't allocate 64 MiB in a unit test; probe the guard via a span with
  // a hostile size over a small buffer is UB, so use resize-once instead.
  std::vector<std::uint8_t> payload(kMaxFramePayload + 1);
  EXPECT_THROW((void)encode_frame(FrameType::kHello, payload), wire::WireError);
}

// The damage sweep: flip every bit of a short multi-frame stream and feed
// the result through a fresh cursor. Every outcome must be one of
// (a) frames parse — type/payload damage is caught downstream by the typed
// payload parsers, which themselves may only throw WireError — or
// (b) WireError at the framing layer. Nothing else: no aborts, no
// unbounded allocation, no silent desync past the stream's end.
TEST(NetFrame, DamageSweepNeverEscapesTypedErrors) {
  const auto a = make_hello({77, kProtocolVersion});
  const auto b = make_join_ack({5, crypto::Key128()});
  const auto c = make_error(FrameErrorCode::kBadState, "zz");
  const auto stream = concat({&a, &b, &c});

  for (std::size_t bit = 0; bit < stream.size() * 8; ++bit) {
    auto damaged = stream;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    FrameCursor cursor;
    cursor.feed(damaged);
    try {
      while (auto frame = cursor.next()) {
        // Payload parsers on a damaged body: typed errors only. The type
        // byte may have mutated, so try the parser matching the original
        // position loosely — every parser must hold the same contract.
        try {
          switch (frame->type) {
            case FrameType::kHello:
              (void)parse_hello(*frame);
              break;
            case FrameType::kJoinAck:
              (void)parse_join_ack(*frame);
              break;
            case FrameType::kError:
              (void)parse_error(*frame);
              break;
            default:
              break;  // mutated type byte: framing still held
          }
        } catch (const wire::WireError&) {
          // typed rejection is a pass
        }
      }
    } catch (const wire::WireError&) {
      // framing-layer rejection is a pass
    }
  }
}

}  // namespace
}  // namespace gk::net
