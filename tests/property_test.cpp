// Parameterized property suites: invariants that must hold across the whole
// configuration space, not just the paper's operating points.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "analytic/batch_cost.h"
#include "analytic/two_partition_model.h"
#include "analytic/wka_bkr_model.h"
#include "common/math.h"
#include "common/rng.h"
#include "lkh/key_ring.h"
#include "lkh/key_tree.h"
#include "transport/session.h"
#include "transport/wka_bkr.h"

namespace gk {
namespace {

using workload::make_member_id;

// ------------------------------------------------ KeyTree across shapes ----

struct TreeCase {
  unsigned degree;
  std::uint64_t members;
  std::uint64_t batch;  // departures (and joins) per committed batch
};

class TreeSweep : public ::testing::TestWithParam<TreeCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeSweep,
    ::testing::Values(TreeCase{2, 64, 1}, TreeCase{2, 257, 16}, TreeCase{3, 100, 7},
                      TreeCase{4, 256, 32}, TreeCase{4, 1000, 100},
                      TreeCase{5, 333, 11}, TreeCase{8, 512, 64},
                      TreeCase{16, 300, 30}),
    [](const ::testing::TestParamInfo<TreeCase>& param_info) {
      return "d" + std::to_string(param_info.param.degree) + "n" +
             std::to_string(param_info.param.members) + "b" +
             std::to_string(param_info.param.batch);
    });

TEST_P(TreeSweep, EveryMemberDecryptsAfterEveryBatch) {
  const auto param = GetParam();
  lkh::KeyTree tree(param.degree, Rng(param.degree * 1000 + param.members));
  std::map<std::uint64_t, lkh::KeyRing> rings;
  std::vector<std::uint64_t> present;

  std::uint64_t next = 0;
  for (std::uint64_t i = 0; i < param.members; ++i) {
    const auto grant = tree.insert(make_member_id(next));
    rings.emplace(next, lkh::KeyRing(make_member_id(next), grant.leaf_id,
                                     grant.individual_key));
    present.push_back(next++);
  }
  auto setup = tree.commit(0);
  for (auto& [id, ring] : rings) ring.process(setup);

  Rng rng(param.members * 31 + param.batch);
  for (std::uint64_t epoch = 1; epoch <= 4; ++epoch) {
    for (std::uint64_t b = 0; b < param.batch; ++b) {
      const auto victim = rng.uniform_u64(present.size());
      tree.remove(make_member_id(present[victim]));
      rings.erase(present[victim]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(victim));

      const auto grant = tree.insert(make_member_id(next));
      rings.emplace(next, lkh::KeyRing(make_member_id(next), grant.leaf_id,
                                       grant.individual_key));
      present.push_back(next++);
    }
    const auto message = tree.commit(epoch);
    for (auto& [id, ring] : rings) {
      ring.process(message);
      ASSERT_TRUE(ring.holds(tree.root_id(), tree.root_key().version))
          << "member " << id << " epoch " << epoch;
    }
  }
}

TEST_P(TreeSweep, HeightStaysNearOptimal) {
  const auto param = GetParam();
  lkh::KeyTree tree(param.degree, Rng(99 + param.members));
  for (std::uint64_t i = 0; i < param.members; ++i) tree.insert(make_member_id(i));
  (void)tree.commit(0);
  const auto stats = tree.stats();
  const unsigned optimal = tree_height(param.members, param.degree);
  EXPECT_LE(stats.height, optimal + 1) << "d=" << param.degree;
}

TEST_P(TreeSweep, BatchCostBelowSequentialCost) {
  const auto param = GetParam();
  if (param.batch < 2) GTEST_SKIP();
  // Batch the departures.
  lkh::KeyTree batched(param.degree, Rng(7));
  lkh::KeyTree sequential(param.degree, Rng(7));  // identical build
  for (std::uint64_t i = 0; i < param.members; ++i) {
    batched.insert(make_member_id(i));
    sequential.insert(make_member_id(i));
  }
  (void)batched.commit(0);
  (void)sequential.commit(0);

  std::size_t batched_cost = 0;
  std::size_t sequential_cost = 0;
  for (std::uint64_t i = 0; i < param.batch; ++i)
    batched.remove(make_member_id(i * 3 % param.members));
  batched_cost = batched.commit(1).cost();
  std::uint64_t epoch = 1;
  for (std::uint64_t i = 0; i < param.batch; ++i) {
    sequential.remove(make_member_id(i * 3 % param.members));
    sequential_cost += sequential.commit(++epoch).cost();
  }
  EXPECT_LE(batched_cost, sequential_cost);
}

// ---------------------------------------------- analytic model properties ----

struct ModelCase {
  unsigned degree;
  double members;
};

class ModelSweep : public ::testing::TestWithParam<ModelCase> {};

INSTANTIATE_TEST_SUITE_P(Grid, ModelSweep,
                         ::testing::Values(ModelCase{2, 1024.0}, ModelCase{3, 5000.0},
                                           ModelCase{4, 65536.0}, ModelCase{4, 100000.0},
                                           ModelCase{8, 262144.0}),
                         [](const ::testing::TestParamInfo<ModelCase>& param_info) {
                           return "d" + std::to_string(param_info.param.degree) +
                                  "n" +
                                  std::to_string(
                                      static_cast<long>(param_info.param.members));
                         });

TEST_P(ModelSweep, CostMonotoneInDepartures) {
  const auto param = GetParam();
  double last = 0.0;
  for (double l = 1.0; l < param.members; l *= 3.0) {
    const double cost = analytic::batch_rekey_cost(param.members, l, param.degree);
    EXPECT_GT(cost, last) << "L=" << l;
    last = cost;
  }
}

TEST_P(ModelSweep, CostBoundedByAllInteriorKeys) {
  const auto param = GetParam();
  const double everything =
      analytic::batch_rekey_cost(param.members, param.members, param.degree);
  for (double l : {1.0, 16.0, 256.0}) {
    EXPECT_LE(analytic::batch_rekey_cost(param.members, l, param.degree), everything);
  }
}

TEST_P(ModelSweep, CostSublinearInBatchSize) {
  // Doubling the batch should less-than-double the cost (path sharing).
  const auto param = GetParam();
  for (double l = 4.0; l * 2.0 < param.members / 4.0; l *= 4.0) {
    const double one = analytic::batch_rekey_cost(param.members, l, param.degree);
    const double two = analytic::batch_rekey_cost(param.members, 2.0 * l, param.degree);
    EXPECT_LT(two, 2.0 * one) << "L=" << l;
  }
}

TEST_P(ModelSweep, WkaCostAtLeastPlainCost) {
  const auto param = GetParam();
  analytic::WkaBkrParams p;
  p.members = param.members;
  p.departures = std::min(256.0, param.members / 8.0);
  p.degree = param.degree;
  p.losses = {{0.05, 1.0}};
  EXPECT_GE(analytic::wka_bkr_cost(p),
            analytic::batch_rekey_cost(param.members, p.departures, param.degree));
}

TEST_P(ModelSweep, WkaCostMonotoneInLoss) {
  const auto param = GetParam();
  double last = 0.0;
  for (double loss : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    analytic::WkaBkrParams p;
    p.members = param.members;
    p.departures = std::min(256.0, param.members / 8.0);
    p.degree = param.degree;
    p.losses = {{loss, 1.0}};
    const double cost = analytic::wka_bkr_cost(p);
    EXPECT_GE(cost, last) << "loss=" << loss;
    last = cost;
  }
}

TEST_P(ModelSweep, TwoPartitionConservation) {
  const auto param = GetParam();
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    analytic::TwoPartitionParams p;
    p.group_size = param.members;
    p.degree = param.degree;
    p.short_fraction = alpha;
    const auto s = analytic::solve_steady_state(p);
    EXPECT_NEAR(s.class_short_pop + s.class_long_pop, p.group_size,
                1e-6 * p.group_size);
    EXPECT_NEAR(s.s_partition_pop + s.l_partition_pop, p.group_size,
                1e-6 * p.group_size);
    EXPECT_GE(s.s_departures, -1e-9);
    EXPECT_GE(s.migrations, -1e-9);
  }
}

// -------------------------------------------------- transport loss grid ----

struct LossCase {
  double loss;
  std::size_t receivers;
};

class TransportSweep : public ::testing::TestWithParam<LossCase> {};

INSTANTIATE_TEST_SUITE_P(Grid, TransportSweep,
                         ::testing::Values(LossCase{0.0, 64}, LossCase{0.01, 64},
                                           LossCase{0.05, 256}, LossCase{0.20, 256},
                                           LossCase{0.40, 64}, LossCase{0.60, 32}),
                         [](const ::testing::TestParamInfo<LossCase>& param_info) {
                           return "p" + std::to_string(static_cast<int>(
                                            param_info.param.loss * 100)) +
                                  "r" + std::to_string(param_info.param.receivers);
                         });

TEST_P(TransportSweep, WkaBkrAlwaysCompletes) {
  const auto param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.loss * 1000) + param.receivers);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> payload;
  for (std::uint64_t i = 0; i < 120; ++i)
    payload.push_back(crypto::wrap_key(kek, crypto::make_key_id(i + 1), 0,
                                       crypto::Key128::random(rng),
                                       crypto::make_key_id(500 + i), 1, rng));
  std::vector<transport::SessionReceiver> receivers;
  for (std::size_t r = 0; r < param.receivers; ++r) {
    std::vector<std::uint32_t> interest;
    for (int j = 0; j < 6; ++j)
      interest.push_back(static_cast<std::uint32_t>(rng.uniform_u64(payload.size())));
    std::sort(interest.begin(), interest.end());
    interest.erase(std::unique(interest.begin(), interest.end()), interest.end());
    receivers.emplace_back(
        netsim::Receiver(make_member_id(r), param.loss, rng.fork()),
        std::move(interest));
  }
  transport::WkaBkrTransport::Config config;
  config.max_rounds = 512;
  transport::WkaBkrTransport transport(config);
  const auto report = transport.deliver(payload, receivers);
  EXPECT_TRUE(report.all_delivered) << "loss " << param.loss;
  // Sanity: cost at least one transmission per watched key.
  EXPECT_GE(report.key_transmissions, 1u);
}

}  // namespace
}  // namespace gk
