// Failover drills: leader death and partition under churn, with the
// replication safety properties asserted end to end — election, epoch
// fencing, exactly-once delivery, and standby convergence.

#include <gtest/gtest.h>

#include <string>

#include "faultsim/failover.h"
#include "faultsim/fault_schedule.h"
#include "partition/factory.h"
#include "partition/journaled_server.h"
#include "replica/cluster.h"
#include "wire/record.h"

namespace gk {
namespace {

workload::MemberProfile profile_for(std::uint64_t id, double epoch) {
  workload::MemberProfile profile;
  profile.id = workload::make_member_id(id);
  profile.member_class = workload::MemberClass::kLong;
  profile.join_time = epoch;
  profile.duration = 16.0;
  profile.loss_rate = 0.0;
  return profile;
}

/// The acceptance drill, driven by hand for maximal observability: three
/// standbys, the leader killed mid-epoch, and every claimed property
/// checked at the step where it must hold.
TEST(Failover, KillLeaderMidEpochWithThreeStandbys) {
  partition::SchemeConfig scheme_config;
  scheme_config.degree = 3;
  scheme_config.s_period_epochs = 2;
  replica::ReplicaCluster::Config config;
  config.standbys = 3;
  config.journal.checkpoint_every = 4;
  replica::ReplicaCluster cluster(
      [&] { return partition::make_server("tt", scheme_config, Rng(23)); }, config);
  EXPECT_EQ(cluster.term(), 1u);

  std::uint64_t next = 1;
  for (int epoch = 0; epoch < 5; ++epoch) {
    (void)cluster.join(profile_for(next++, epoch));
    (void)cluster.join(profile_for(next++, epoch));
    if (epoch > 1) cluster.leave(workload::make_member_id(next - 4));
    (void)cluster.end_epoch();
    ASSERT_TRUE(cluster.standbys_identical());
  }
  const auto doomed_epoch = cluster.leader().durable().epoch();

  // Mid-epoch: membership changed, then the leader dies after journaling
  // (and shipping) COMMIT_BEGIN but before delivering the rekey message.
  (void)cluster.join(profile_for(next++, 5.0));
  cluster.kill_leader_mid_commit();
  EXPECT_THROW((void)cluster.end_epoch(), partition::ServerCrashed);
  EXPECT_FALSE(cluster.has_leader());

  // Failover: a new leader is elected with a fencing term, and it already
  // holds the epoch the dead leader never delivered.
  const auto failover = cluster.failover();
  EXPECT_TRUE(cluster.has_leader());
  EXPECT_EQ(failover.term, 2u);
  EXPECT_EQ(cluster.term(), 2u);
  EXPECT_EQ(cluster.standby_count(), 2u);  // one standby was promoted
  ASSERT_TRUE(failover.pending.has_value());
  EXPECT_EQ(failover.pending->epoch, doomed_epoch);
  EXPECT_EQ(failover.pending->term, 2u);
  EXPECT_GT(failover.pending->message.cost(), 0u);

  // The promoted leader committed the interrupted epoch exactly once: its
  // next commit is the following epoch, and the survivors converged on it.
  EXPECT_EQ(cluster.leader().durable().epoch(), doomed_epoch + 1);
  ASSERT_TRUE(cluster.standbys_identical());

  // The cluster keeps serving: churn and commit under the new term.
  (void)cluster.join(profile_for(next++, 6.0));
  const auto out = cluster.end_epoch();
  EXPECT_EQ(out.term, 2u);
  EXPECT_EQ(out.epoch, doomed_epoch + 1);
  ASSERT_TRUE(cluster.standbys_identical());
}

TEST(Failover, PartitionedExLeaderIsFencedOutEverywhere) {
  partition::SchemeConfig scheme_config;
  scheme_config.degree = 3;
  replica::ReplicaCluster::Config config;
  config.standbys = 3;
  replica::ReplicaCluster cluster(
      [&] { return partition::make_server("one-tree", scheme_config, Rng(31)); },
      config);

  std::uint64_t next = 1;
  for (int epoch = 0; epoch < 3; ++epoch) {
    (void)cluster.join(profile_for(next++, epoch));
    (void)cluster.end_epoch();
  }

  cluster.partition_leader();
  const auto failover = cluster.failover();
  EXPECT_FALSE(failover.pending.has_value());  // nothing was interrupted
  EXPECT_EQ(cluster.term(), 2u);

  // The new leader commits first, raising every fence to term 2...
  (void)cluster.join(profile_for(next++, 3.0));
  const auto fresh = cluster.end_epoch();
  EXPECT_EQ(fresh.term, 2u);

  // ...so the ex-leader's split-brain commit is refused by every standby,
  // and its framed rekey record carries the stale term members refuse.
  const auto probe = cluster.stale_commit();
  EXPECT_EQ(probe.output.term, 1u);
  ASSERT_EQ(probe.verdicts.size(), cluster.standby_count());
  for (const auto verdict : probe.verdicts)
    EXPECT_EQ(verdict, replica::StandbyReplica::Offer::kRejectedStale);
  const auto framed = wire::RekeyRecord::decode_framed(
      wire::RekeyRecord::encode(probe.output.message, probe.output.term));
  EXPECT_LT(framed.term, cluster.term());

  ASSERT_TRUE(cluster.standbys_identical());
}

TEST(FailoverDrill, ScheduledKillsConvergeAndDeliverExactlyOnce) {
  faultsim::FailoverConfig config;
  config.scheme = "tt";
  config.standbys = 3;
  config.epochs = 14;
  config.seed = 7;
  config.faults.seed = 7;
  config.faults.leader_kill = 0.25;
  const auto result = faultsim::run_failover_drill(config);

  ASSERT_GE(result.leader_kills, 1u) << "seed produced no kills; change it";
  EXPECT_EQ(result.failovers, result.leader_kills);
  EXPECT_EQ(result.pending_epochs_delivered, result.leader_kills);
  EXPECT_EQ(result.invariant_checks, config.epochs);
  EXPECT_EQ(result.final_term, 1 + result.failovers);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.epochs.size(), config.epochs);
  // Attribution: exactly the failover epochs are stamped with a new leader.
  std::size_t failover_epochs = 0;
  std::uint64_t last_term = 0;
  for (const auto& record : result.epochs) {
    if (record.failover) ++failover_epochs;
    EXPECT_GE(record.term, last_term);
    last_term = record.term;
  }
  EXPECT_EQ(failover_epochs, result.failovers);
}

TEST(FailoverDrill, PartitionsAreFencedAndShipFaultsHeal) {
  faultsim::FailoverConfig config;
  config.scheme = "qt";
  config.standbys = 4;
  config.epochs = 14;
  config.seed = 11;
  config.faults.seed = 11;
  config.faults.leader_partition = 0.2;
  config.faults.ship_delay = 0.15;
  config.faults.ship_torn = 0.15;
  const auto result = faultsim::run_failover_drill(config);

  ASSERT_GE(result.leader_partitions, 1u) << "seed produced no partitions; change it";
  ASSERT_GE(result.ship_faults_injected, 1u) << "seed produced no ship faults";
  EXPECT_GE(result.stale_frames_refused, result.leader_partitions);
  EXPECT_GE(result.stale_records_refused, result.leader_partitions);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.digest_checks, 0u);
}

class DrillScheme : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Schemes, DrillScheme,
                         ::testing::Values("one-tree", "qt", "tt", "loss-bin"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST_P(DrillScheme, MixedFaultSoakHoldsEveryInvariant) {
  faultsim::FailoverConfig config;
  config.scheme = GetParam();
  config.standbys = 3;
  config.epochs = 12;
  config.initial_members = 16;
  config.seed = 0xfa11;
  config.faults.seed = 0xfa11;
  config.faults.leader_kill = 0.15;
  config.faults.leader_partition = 0.1;
  config.faults.ship_delay = 0.1;
  config.faults.ship_torn = 0.1;
  const auto result = faultsim::run_failover_drill(config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.invariant_checks, config.epochs);
  EXPECT_GT(result.final_group_size, 0u);
}

}  // namespace
}  // namespace gk
