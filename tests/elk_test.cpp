#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "elk/elk_member.h"
#include "elk/elk_tree.h"

namespace gk::elk {
namespace {

using workload::make_member_id;

/// ELK deployment discipline: joins take effect at interval boundaries
/// (members materialized from grants after end_epoch()); departures are
/// per-operation broadcasts everyone consumes immediately.
class ElkGroup {
 public:
  explicit ElkGroup(std::uint64_t seed = 2001) : tree_(Rng(seed)) {}

  void join(std::uint64_t id) {
    tree_.join(make_member_id(id));
    pending_.push_back(id);
  }

  void leave(std::uint64_t id) {
    members_.erase(id);
    ElkRekeyMessage message;
    tree_.leave(make_member_id(id), message);
    last_bits_ = message.payload_bits();
    for (auto& [mid, member] : members_) member.process(message);
    // The departed member's eavesdropping is modelled in tests directly.
    last_message_ = message;
  }

  void end_epoch() {
    tree_.end_epoch();
    for (auto& [mid, member] : members_) member.apply_refresh();
    // Post-refresh: issue grants for arrivals and re-grants for splits.
    for (const auto id : pending_)
      if (tree_.contains(make_member_id(id)))
        members_.emplace(id, ElkMember(make_member_id(id),
                                       tree_.grant_for(make_member_id(id))));
    pending_.clear();
    for (const auto member : tree_.relocated()) {
      const auto it = members_.find(workload::raw(member));
      if (it != members_.end()) it->second.re_grant(tree_.grant_for(member));
    }
  }

  [[nodiscard]] bool in_sync(std::uint64_t id) const {
    return members_.at(id).holds(tree_.root_id(), tree_.group_key().version);
  }

  ElkTree& tree() { return tree_; }
  [[nodiscard]] std::size_t last_bits() const noexcept { return last_bits_; }
  [[nodiscard]] const ElkRekeyMessage& last_message() const { return last_message_; }
  [[nodiscard]] ElkMember& member(std::uint64_t id) { return members_.at(id); }

 private:
  ElkTree tree_;
  std::map<std::uint64_t, ElkMember> members_;
  std::vector<std::uint64_t> pending_;
  std::size_t last_bits_ = 0;
  ElkRekeyMessage last_message_;
};

TEST(Elk, JoinsAreBroadcastFree) {
  ElkGroup group;
  for (std::uint64_t i = 0; i < 16; ++i) group.join(i);
  group.end_epoch();
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_TRUE(group.in_sync(i)) << i;
  // No leave happened, so no contribution bits were ever multicast.
  EXPECT_EQ(group.last_bits(), 0u);
}

TEST(Elk, RefreshAdvancesEveryoneInLockstep) {
  ElkGroup group;
  for (std::uint64_t i = 0; i < 8; ++i) group.join(i);
  group.end_epoch();
  const auto v1 = group.tree().group_key().version;
  group.end_epoch();
  group.end_epoch();
  EXPECT_EQ(group.tree().group_key().version, v1 + 2);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(group.in_sync(i)) << i;
}

TEST(Elk, SurvivorsFollowDepartures) {
  ElkGroup group;
  for (std::uint64_t i = 0; i < 24; ++i) group.join(i);
  group.end_epoch();
  group.leave(7);
  group.leave(13);
  for (std::uint64_t i = 0; i < 24; ++i) {
    if (i == 7 || i == 13) continue;
    EXPECT_TRUE(group.in_sync(i)) << "member " << i;
  }
}

TEST(Elk, DepartedMemberCannotFollow) {
  ElkGroup group;
  for (std::uint64_t i = 0; i < 12; ++i) group.join(i);
  group.end_epoch();

  // Snapshot the departing member's view right before it leaves.
  ElkMember leaver(make_member_id(5), group.tree().grant_for(make_member_id(5)));
  group.leave(5);
  leaver.process(group.last_message());  // eavesdrops the broadcast
  EXPECT_FALSE(leaver.holds(group.tree().root_id(), group.tree().group_key().version));
}

TEST(Elk, NewcomerCannotUnwindRefresh) {
  ElkGroup group;
  for (std::uint64_t i = 0; i < 8; ++i) group.join(i);
  group.end_epoch();
  const auto old_key = group.tree().group_key();

  group.join(100);
  group.end_epoch();  // newcomer admitted post-refresh
  EXPECT_TRUE(group.in_sync(100));
  // The group key it holds is a one-way image of (not equal to) the old.
  const auto held = group.member(100).lookup(group.tree().root_id());
  ASSERT_TRUE(held.has_value());
  EXPECT_NE(held->key, old_key.key);
  EXPECT_EQ(held->version, old_key.version + 1);
}

TEST(Elk, DeparturePayloadIsBitsNotKeys) {
  ElkGroup group;
  for (std::uint64_t i = 0; i < 256; ++i) group.join(i);
  group.end_epoch();
  group.leave(100);
  // ~log2(256) = 8 updated nodes, two 16-bit contributions each:
  // a few hundred bits versus 8 * 2 * 128 = 2048+ bits of wrapped keys
  // in binary LKH (and that ignores LKH's per-wrap nonce/tag overhead).
  EXPECT_LE(group.last_bits(), 16u * 2u * 12u);
  EXPECT_GE(group.last_bits(), 16u * 2u * 4u);
}

TEST(Elk, ChurnStaysConsistent) {
  ElkGroup group(77);
  Rng rng(88);
  std::vector<std::uint64_t> present;
  std::uint64_t next = 0;
  for (int epoch = 0; epoch < 15; ++epoch) {
    const auto joins = 1 + rng.uniform_u64(4);
    for (std::uint64_t j = 0; j < joins; ++j) {
      group.join(next);
      // present after the epoch boundary
      present.push_back(next++);
    }
    group.end_epoch();
    const auto leaves = rng.uniform_u64(std::min<std::uint64_t>(present.size(), 3));
    for (std::uint64_t l = 0; l < leaves; ++l) {
      const auto idx = rng.uniform_u64(present.size());
      group.leave(present[idx]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    for (const auto id : present)
      ASSERT_TRUE(group.in_sync(id)) << "member " << id << " epoch " << epoch;
  }
}

TEST(Elk, ScheduleFunctionsAreDeterministicAndSeparated) {
  Rng rng(9);
  const auto key = crypto::Key128::random(rng);
  const auto parent = crypto::Key128::random(rng);
  EXPECT_EQ(ElkTree::refresh(key), ElkTree::refresh(key));
  EXPECT_NE(ElkTree::refresh(key), key);
  EXPECT_EQ(ElkTree::contribution(key, parent, true, 16),
            ElkTree::contribution(key, parent, true, 16));
  EXPECT_NE(ElkTree::contribution(key, parent, true, 16),
            ElkTree::contribution(key, parent, false, 16));
  EXPECT_LT(ElkTree::contribution(key, parent, true, 8), 256u);
  EXPECT_NE(ElkTree::combine(parent, 1, 2), ElkTree::combine(parent, 2, 1));
}

TEST(Elk, TamperedContributionIsRejectedByCheckValue) {
  ElkGroup group;
  for (std::uint64_t i = 0; i < 8; ++i) group.join(i);
  group.end_epoch();

  ElkMember observer(make_member_id(0), group.tree().grant_for(make_member_id(0)));
  ElkRekeyMessage message;
  group.tree().leave(make_member_id(5), message);
  ASSERT_FALSE(message.contributions.empty());
  auto tampered = message;
  for (auto& c : tampered.contributions) c.ciphertext ^= 0x1;
  EXPECT_EQ(observer.process(tampered), 0u);
  EXPECT_GT(observer.process(message), 0u);
}

}  // namespace
}  // namespace gk::elk
