#include <gtest/gtest.h>

#include <cmath>

#include "analytic/batch_cost.h"
#include "analytic/fec_model.h"
#include "analytic/multisend_model.h"
#include "analytic/two_partition_model.h"
#include "analytic/wka_bkr_model.h"

namespace gk::analytic {
namespace {

// ----------------------------------------------------- Appendix A model ----

TEST(BatchCost, ZeroCases) {
  EXPECT_DOUBLE_EQ(batch_rekey_cost(0.0, 10.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(batch_rekey_cost(100.0, 0.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(batch_rekey_cost(1.0, 1.0, 4), 0.0);  // lone member: no KEKs
}

TEST(BatchCost, SingleDepartureApproximatesDLogN) {
  // Ne(N, 1) should be close to d * logd(N) (each path key updated, one
  // encryption per child; the bottom level has one fewer but the model
  // counts d for all levels).
  const double cost = batch_rekey_cost_full_tree(65536, 1.0, 4);
  EXPECT_NEAR(cost, 4.0 * 8.0, 0.5);
}

TEST(BatchCost, FullDepartureCountsAllInteriorKeys) {
  // All 64 leaves leave a full 4-ary tree of height 3:
  // interior keys = 1 + 4 + 16 = 21, each wrapped d times.
  EXPECT_DOUBLE_EQ(batch_rekey_cost_full_tree(64, 64.0, 4), 4.0 * 21.0);
}

TEST(BatchCost, LevelProbabilityMatchesDirectFormula) {
  // N=64, d=4, h=3, level 2: S = 4, L = 2.
  // P = 1 - C(60,2)/C(64,2) = 1 - (60*59)/(64*63).
  const double expected = 1.0 - (60.0 * 59.0) / (64.0 * 63.0);
  EXPECT_NEAR(level_update_probability(64, 2.0, 4, 2, 3), expected, 1e-12);
}

TEST(BatchCost, MonotoneInDepartures) {
  double last = 0.0;
  for (double l = 1.0; l <= 512.0; l *= 2.0) {
    const double cost = batch_rekey_cost(65536.0, l, 4);
    EXPECT_GT(cost, last);
    last = cost;
  }
}

TEST(BatchCost, BatchingBeatsIndividualRekeys) {
  // Sublinearity: Ne(N, L) < L * Ne(N, 1) for L > 1.
  const double batched = batch_rekey_cost(65536.0, 256.0, 4);
  const double individual = 256.0 * batch_rekey_cost(65536.0, 1.0, 4);
  EXPECT_LT(batched, individual);
}

TEST(BatchCost, InterpolationIsContinuousAtFullSizes) {
  const double at_full = batch_rekey_cost(4096.0, 64.0, 4);
  const double just_above = batch_rekey_cost(4097.0, 64.0, 4);
  const double exact = batch_rekey_cost_full_tree(4096, 64.0, 4);
  EXPECT_NEAR(at_full, exact, 1e-9);
  EXPECT_NEAR(just_above, exact, exact * 0.01);
}

TEST(BatchCost, PaperDefaultOperatingPoint) {
  // Fig. 3 at K=0 (one-keytree baseline) is ~1.62e4 encrypted keys.
  // With Table 1 parameters J ~ 1684, and Ne(65536, 1684) lands there.
  const double cost = batch_rekey_cost(65536.0, 1683.9, 4);
  EXPECT_NEAR(cost, 16200.0, 700.0);
}

// ----------------------------------------------- two-partition (Sec. 3) ----

TEST(TwoPartition, SteadyStateClosesTheSystem) {
  TwoPartitionParams p;  // Table 1 defaults
  const auto s = solve_steady_state(p);
  EXPECT_NEAR(s.class_short_pop + s.class_long_pop, p.group_size, 1e-6);
  EXPECT_NEAR(s.s_partition_pop + s.l_partition_pop, p.group_size, 1e-6);
  EXPECT_NEAR(s.class_short_leaves + s.class_long_leaves, s.joins, 1e-9);
  EXPECT_NEAR(s.s_departures + s.migrations, s.joins, 1e-9);
  EXPECT_DOUBLE_EQ(s.l_departures, s.migrations);
}

TEST(TwoPartition, PaperDefaultJoinRate) {
  TwoPartitionParams p;
  const auto s = solve_steady_state(p);
  // J = N / (alpha/Pr(Tp,Ms) + (1-alpha)/Pr(Tp,Ml)) ~ 1683.9
  EXPECT_NEAR(s.joins, 1683.9, 1.0);
}

TEST(TwoPartition, DepartureProbability) {
  EXPECT_NEAR(departure_probability(60.0, 180.0), 1.0 - std::exp(-1.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(departure_probability(0.0, 100.0), 0.0);
}

TEST(TwoPartition, KZeroFallsBackToOneKeytree) {
  TwoPartitionParams p;
  p.s_period_epochs = 0;
  EXPECT_NEAR(qt_cost(p), one_keytree_cost(p), 1e-6);
  EXPECT_NEAR(tt_cost(p), one_keytree_cost(p), 1e-6);
}

TEST(TwoPartition, Fig3ShapeAtDefaults) {
  // At Table 1 defaults with K=10: TT beats one-keytree by ~25%, QT sits
  // between TT and one-keytree, PT is best (~40% gain).
  TwoPartitionParams p;
  const double base = one_keytree_cost(p);
  const double tt = tt_cost(p);
  const double qt = qt_cost(p);
  const double pt = pt_cost(p);

  EXPECT_LT(tt, base);
  EXPECT_LT(qt, base);
  EXPECT_LT(pt, tt);
  EXPECT_LT(pt, qt);

  const double tt_gain = 1.0 - tt / base;
  EXPECT_NEAR(tt_gain, 0.25, 0.07);
  const double pt_gain = 1.0 - pt / base;
  EXPECT_NEAR(pt_gain, 0.40, 0.08);
}

TEST(TwoPartition, Fig4PeakGainNearPaperClaim) {
  // Paper: up to 31.4% improvement at alpha = 0.9 (K = 10).
  TwoPartitionParams p;
  p.short_fraction = 0.9;
  const double base = one_keytree_cost(p);
  const double best = std::min(tt_cost(p), qt_cost(p));
  EXPECT_NEAR(1.0 - best / base, 0.314, 0.08);
}

TEST(TwoPartition, LowAlphaFavorsOneKeytree) {
  // Fig. 4: for alpha <= 0.4 the one-keytree scheme wins (migration
  // overhead dominates).
  TwoPartitionParams p;
  p.short_fraction = 0.2;
  EXPECT_GT(tt_cost(p), one_keytree_cost(p));
  EXPECT_GT(qt_cost(p), one_keytree_cost(p));
}

TEST(TwoPartition, PtAlwaysAtLeastAsGoodAsOthers) {
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    TwoPartitionParams p;
    p.short_fraction = alpha;
    const double pt = pt_cost(p);
    EXPECT_LE(pt, tt_cost(p) * 1.001) << "alpha " << alpha;
    EXPECT_LE(pt, qt_cost(p) * 1.001) << "alpha " << alpha;
  }
}

TEST(TwoPartition, GroupSizeBarelyChangesRelativeGain) {
  // Fig. 5: >22% savings across N = 1K..256K at the defaults.
  for (double n : {1024.0, 4096.0, 16384.0, 65536.0, 262144.0}) {
    TwoPartitionParams p;
    p.group_size = n;
    const double base = one_keytree_cost(p);
    EXPECT_GT(1.0 - tt_cost(p) / base, 0.18) << "N " << n;
    EXPECT_GT(1.0 - qt_cost(p) / base, 0.18) << "N " << n;
  }
}

// --------------------------------------------- WKA-BKR (Appendix B) ----

TEST(WkaBkr, ExpectedTransmissionsLossFree) {
  EXPECT_NEAR(expected_transmissions(100.0, {{0.0, 1.0}}), 1.0, 1e-9);
}

TEST(WkaBkr, ExpectedTransmissionsSingleReceiver) {
  // E[M] for one receiver at loss p is 1/(1-p).
  EXPECT_NEAR(expected_transmissions(1.0, {{0.2, 1.0}}), 1.0 / 0.8, 1e-6);
  EXPECT_NEAR(expected_transmissions(1.0, {{0.5, 1.0}}), 2.0, 1e-6);
}

TEST(WkaBkr, MoreReceiversNeedMoreTransmissions) {
  const std::vector<LossClass> losses{{0.1, 1.0}};
  double last = 0.0;
  for (double r : {1.0, 10.0, 100.0, 1000.0}) {
    const double m = expected_transmissions(r, losses);
    EXPECT_GT(m, last);
    last = m;
  }
}

TEST(WkaBkr, MixtureBoundedByPureClasses) {
  const double low = expected_transmissions(100.0, {{0.02, 1.0}});
  const double high = expected_transmissions(100.0, {{0.20, 1.0}});
  const double mixed = expected_transmissions(100.0, {{0.02, 0.7}, {0.20, 0.3}});
  EXPECT_GT(mixed, low);
  EXPECT_LT(mixed, high);
}

TEST(WkaBkr, LossFreeCostReducesToBatchCost) {
  WkaBkrParams p;
  p.members = 65536.0;
  p.departures = 256.0;
  p.degree = 4;
  p.losses = {{0.0, 1.0}};
  EXPECT_NEAR(wka_bkr_cost(p), batch_rekey_cost(65536.0, 256.0, 4), 1e-6);
}

TEST(WkaBkr, Fig6LossHomogenizationGain) {
  // Paper Fig. 6: at alpha = 0.3 (fraction of high-loss receivers,
  // ph = 20%, pl = 2%, N = 65536, L = 256) the two loss-homogenized trees
  // beat the single tree by up to ~12.1%.
  const double alpha = 0.3;
  WkaBkrParams one;
  one.members = 65536.0;
  one.departures = 256.0;
  one.degree = 4;
  one.losses = {{0.02, 1.0 - alpha}, {0.20, alpha}};
  const double one_cost = wka_bkr_cost(one);

  WkaBkrParams low;
  low.members = (1.0 - alpha) * 65536.0;
  low.departures = (1.0 - alpha) * 256.0;
  low.degree = 4;
  low.losses = {{0.02, 1.0}};
  WkaBkrParams high;
  high.members = alpha * 65536.0;
  high.departures = alpha * 256.0;
  high.degree = 4;
  high.losses = {{0.20, 1.0}};
  const double split_cost = wka_bkr_forest_cost({low, high});

  EXPECT_LT(split_cost, one_cost);
  EXPECT_NEAR(1.0 - split_cost / one_cost, 0.121, 0.06);
}

TEST(WkaBkr, HomogeneousGroupGainsNothing) {
  // Fig. 6 endpoints: with uniform loss, splitting into two trees does not
  // help (and random splitting slightly hurts due to the extra root).
  WkaBkrParams one;
  one.members = 65536.0;
  one.departures = 256.0;
  one.degree = 4;
  one.losses = {{0.05, 1.0}};
  const double one_cost = wka_bkr_cost(one);

  WkaBkrParams half = one;
  half.members = 32768.0;
  half.departures = 128.0;
  const double split_cost = wka_bkr_forest_cost({half, half});
  EXPECT_NEAR(split_cost, one_cost, one_cost * 0.1);
}

// ----------------------------------------------------------- FEC model ----

TEST(Fec, LossFreeBlockCostsInitialRound) {
  FecParams p;
  p.block_size = 16;
  p.proactivity = 1.0;
  p.receivers = 1000.0;
  p.losses = {{0.0, 1.0}};
  EXPECT_DOUBLE_EQ(fec_block_cost(p), 16.0);
}

TEST(Fec, ProactivityReducesRetransmissions) {
  FecParams base;
  base.block_size = 16;
  base.receivers = 1000.0;
  base.losses = {{0.05, 1.0}};

  FecParams lean = base;
  lean.proactivity = 1.0;
  FecParams rich = base;
  rich.proactivity = 1.5;

  const double lean_cost = fec_block_cost(lean);
  const double rich_cost = fec_block_cost(rich);
  // Rich proactivity pays more up front but needs (almost) no feedback
  // rounds; at 5% loss 24 packets nearly always decode.
  EXPECT_GT(lean_cost, 16.0);
  EXPECT_LT(rich_cost, lean_cost + 8.0 + 1.0);
}

TEST(Fec, HighLossReceiversDriveCost) {
  FecParams low;
  low.block_size = 16;
  low.proactivity = 1.25;
  low.receivers = 1000.0;
  low.losses = {{0.02, 1.0}};

  FecParams mixed = low;
  mixed.losses = {{0.02, 0.9}, {0.20, 0.1}};

  EXPECT_GT(fec_block_cost(mixed), fec_block_cost(low));
}

TEST(Fec, PayloadScalesByBlocks) {
  FecParams p;
  p.block_size = 8;
  p.proactivity = 1.0;
  p.receivers = 10.0;
  p.losses = {{0.0, 1.0}};
  p.source_packets = 33.0;  // 5 blocks
  EXPECT_DOUBLE_EQ(fec_payload_cost(p), 5.0 * 8.0);
}

// ----------------------------------------------------- multi-send model ----

TEST(MultiSend, LossFreeSendsOnce) {
  MultiSendParams p;
  p.payload_keys = 1000.0;
  p.receivers = 1000.0;
  p.losses = {{0.0, 1.0}};
  EXPECT_EQ(multisend_replication(p), 1u);
  EXPECT_DOUBLE_EQ(multisend_cost(p), 1000.0);
}

TEST(MultiSend, ReplicationGrowsWithLossAndGroupSize) {
  MultiSendParams p;
  p.payload_keys = 1000.0;
  p.receivers = 1000.0;
  p.losses = {{0.05, 1.0}};
  const auto m_small = multisend_replication(p);
  p.receivers = 100000.0;
  const auto m_large = multisend_replication(p);
  EXPECT_GE(m_large, m_small);
  EXPECT_GT(m_small, 1u);
}

TEST(MultiSend, CostsMoreThanWkaBkr) {
  // WKA-BKR's claim: uniform replication wastes bandwidth versus weighting
  // by receiver count; verify the models agree on the ordering.
  MultiSendParams ms;
  ms.payload_keys = batch_rekey_cost(65536.0, 256.0, 4);
  ms.keys_per_receiver = 8.0;
  ms.receivers = 65536.0;
  ms.losses = {{0.05, 1.0}};

  WkaBkrParams wb;
  wb.members = 65536.0;
  wb.departures = 256.0;
  wb.degree = 4;
  wb.losses = {{0.05, 1.0}};

  EXPECT_GT(multisend_cost(ms), wka_bkr_cost(wb));
}

}  // namespace
}  // namespace gk::analytic
