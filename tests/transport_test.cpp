#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "crypto/key.h"
#include "crypto/keywrap.h"
#include "transport/fec.h"
#include "transport/gf256.h"
#include "transport/multisend.h"
#include "transport/packet.h"
#include "transport/rs_code.h"
#include "transport/session.h"
#include "transport/wka_bkr.h"

namespace gk::transport {
namespace {

// ---------------------------------------------------------------- GF256 ----

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf256::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(gf256::add(7, 7), 0);
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, InverseRoundTrips) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << "a = " << a;
  }
}

TEST(Gf256, MultiplicationCommutesAndAssociates) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const auto b = static_cast<std::uint8_t>(rng());
    const auto c = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 17) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(gf256::pow(static_cast<std::uint8_t>(a), e), acc);
      acc = gf256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

// ---------------------------------------------------------- ReedSolomon ----

std::vector<std::vector<std::uint8_t>> random_sources(Rng& rng, unsigned k,
                                                      std::size_t len) {
  std::vector<std::vector<std::uint8_t>> sources(k, std::vector<std::uint8_t>(len));
  for (auto& s : sources)
    for (auto& b : s) b = static_cast<std::uint8_t>(rng());
  return sources;
}

TEST(ReedSolomon, SystematicShardsAreSources) {
  Rng rng(2);
  const auto sources = random_sources(rng, 4, 100);
  ReedSolomon rs(4, 8);
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(rs.encode_shard(sources, i), sources[i]);
}

TEST(ReedSolomon, DecodeFromParityOnly) {
  Rng rng(3);
  const auto sources = random_sources(rng, 5, 64);
  ReedSolomon rs(5, 10);
  std::vector<std::pair<unsigned, std::vector<std::uint8_t>>> shards;
  for (unsigned i = 5; i < 10; ++i) shards.emplace_back(i, rs.encode_shard(sources, i));
  const auto decoded = rs.decode(shards);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sources);
}

TEST(ReedSolomon, InsufficientShardsFail) {
  Rng rng(4);
  const auto sources = random_sources(rng, 6, 32);
  ReedSolomon rs(6, 6);
  std::vector<std::pair<unsigned, std::vector<std::uint8_t>>> shards;
  for (unsigned i = 0; i < 5; ++i) shards.emplace_back(i, rs.encode_shard(sources, i));
  EXPECT_FALSE(rs.decode(shards).has_value());
}

TEST(ReedSolomon, DuplicateShardsDontCount) {
  Rng rng(5);
  const auto sources = random_sources(rng, 3, 16);
  ReedSolomon rs(3, 3);
  std::vector<std::pair<unsigned, std::vector<std::uint8_t>>> shards;
  shards.emplace_back(0, rs.encode_shard(sources, 0));
  shards.emplace_back(0, rs.encode_shard(sources, 0));
  shards.emplace_back(4, rs.encode_shard(sources, 4));
  EXPECT_FALSE(rs.decode(shards).has_value());
  shards.emplace_back(5, rs.encode_shard(sources, 5));
  EXPECT_TRUE(rs.decode(shards).has_value());
}

struct RsCase {
  unsigned k;
  unsigned parity;
  unsigned drop;  // sources erased
};

class RsProperty : public ::testing::TestWithParam<RsCase> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, RsProperty,
    ::testing::Values(RsCase{1, 1, 1}, RsCase{2, 2, 2}, RsCase{4, 4, 3},
                      RsCase{8, 8, 8}, RsCase{16, 16, 5}, RsCase{16, 4, 4},
                      RsCase{32, 16, 16}, RsCase{64, 32, 20}, RsCase{100, 50, 50},
                      RsCase{128, 127, 100}),
    [](const ::testing::TestParamInfo<RsCase>& param_info) {
      return "k" + std::to_string(param_info.param.k) + "p" +
             std::to_string(param_info.param.parity) + "d" +
             std::to_string(param_info.param.drop);
    });

TEST_P(RsProperty, AnyKShardsReconstruct) {
  const auto param = GetParam();
  ASSERT_LE(param.drop, param.parity);
  ASSERT_LE(param.drop, param.k);
  Rng rng(1000 + param.k * 7 + param.parity);
  const auto sources = random_sources(rng, param.k, 48);
  ReedSolomon rs(param.k, param.parity);

  // Erase `drop` random sources, replace with random parity shards.
  std::vector<unsigned> source_ids(param.k);
  for (unsigned i = 0; i < param.k; ++i) source_ids[i] = i;
  rng.shuffle(source_ids);

  std::vector<std::pair<unsigned, std::vector<std::uint8_t>>> shards;
  for (unsigned i = param.drop; i < param.k; ++i)
    shards.emplace_back(source_ids[i], rs.encode_shard(sources, source_ids[i]));
  std::vector<unsigned> parity_ids(param.parity);
  for (unsigned i = 0; i < param.parity; ++i) parity_ids[i] = param.k + i;
  rng.shuffle(parity_ids);
  for (unsigned i = 0; i < param.drop; ++i)
    shards.emplace_back(parity_ids[i], rs.encode_shard(sources, parity_ids[i]));

  const auto decoded = rs.decode(shards);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sources);
}

// --------------------------------------------------------------- Packet ----

std::vector<crypto::WrappedKey> synthetic_payload(std::size_t count, Rng& rng) {
  std::vector<crypto::WrappedKey> payload;
  payload.reserve(count);
  const auto kek = crypto::Key128::random(rng);
  for (std::size_t i = 0; i < count; ++i) {
    payload.push_back(crypto::wrap_key(kek, crypto::make_key_id(i + 1), 2,
                                       crypto::Key128::random(rng),
                                       crypto::make_key_id(1000 + i), 3, rng));
  }
  return payload;
}

TEST(Packet, SerializationRoundTrips) {
  Rng rng(6);
  const auto payload = synthetic_payload(5, rng);
  Packet packet;
  packet.key_indices = {0, 2, 4};
  const auto bytes = serialize_packet(packet, payload);
  EXPECT_EQ(bytes.size(), 3 * crypto::WrappedKey::kWireSize);
  const auto wraps = deserialize_wraps(bytes, 3);
  ASSERT_EQ(wraps.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& original = payload[packet.key_indices[i]];
    EXPECT_EQ(wraps[i].target_id, original.target_id);
    EXPECT_EQ(wraps[i].wrapping_id, original.wrapping_id);
    EXPECT_EQ(wraps[i].target_version, original.target_version);
    EXPECT_EQ(wraps[i].wrapping_version, original.wrapping_version);
    EXPECT_EQ(wraps[i].nonce, original.nonce);
    EXPECT_EQ(wraps[i].ciphertext, original.ciphertext);
    EXPECT_EQ(wraps[i].tag, original.tag);
  }
}

// ------------------------------------------------------------ protocols ----

std::vector<SessionReceiver> make_receivers(std::size_t count, double loss,
                                            std::size_t payload_size,
                                            std::size_t interest_size, Rng& rng) {
  std::vector<SessionReceiver> receivers;
  for (std::size_t r = 0; r < count; ++r) {
    std::vector<std::uint32_t> interest;
    while (interest.size() < interest_size) {
      const auto w = static_cast<std::uint32_t>(rng.uniform_u64(payload_size));
      if (std::find(interest.begin(), interest.end(), w) == interest.end())
        interest.push_back(w);
    }
    std::sort(interest.begin(), interest.end());
    receivers.emplace_back(
        netsim::Receiver(workload::make_member_id(r), loss, rng.fork()),
        std::move(interest));
  }
  return receivers;
}

TEST(WkaBkr, LossFreeDeliversInOneRoundAtUnitWeight) {
  Rng rng(7);
  const auto payload = synthetic_payload(100, rng);
  auto receivers = make_receivers(50, 0.0, payload.size(), 6, rng);
  WkaBkrTransport transport({});
  // Keys nobody wants are never sent (sparseness property), so count the
  // distinct keys actually watched.
  std::vector<bool> watched(payload.size(), false);
  for (const auto& r : receivers)
    for (const auto w : r.interest) watched[w] = true;
  const auto watched_count =
      static_cast<std::size_t>(std::count(watched.begin(), watched.end(), true));

  const auto report = transport.deliver(payload, receivers);
  EXPECT_TRUE(report.all_delivered);
  EXPECT_EQ(report.rounds, 1u);
  // Loss-free E[M] = 1 for every watched key: exactly one copy each.
  EXPECT_EQ(report.key_transmissions, watched_count);
}

TEST(WkaBkr, LossyGroupFullyServed) {
  Rng rng(8);
  const auto payload = synthetic_payload(200, rng);
  auto receivers = make_receivers(200, 0.2, payload.size(), 8, rng);
  WkaBkrTransport transport({});
  const auto report = transport.deliver(payload, receivers);
  EXPECT_TRUE(report.all_delivered);
  EXPECT_GT(report.key_transmissions, 200u);  // replication happened
  for (const auto& r : receivers) EXPECT_TRUE(r.done());
}

TEST(WkaBkr, WeightingBeatsUnweightedOnRounds) {
  Rng rng(9);
  const auto payload = synthetic_payload(300, rng);

  auto run = [&](bool weighted, std::uint64_t seed) {
    Rng local(seed);
    auto receivers = make_receivers(300, 0.15, payload.size(), 8, local);
    WkaBkrTransport::Config config;
    config.weighted = weighted;
    WkaBkrTransport transport(config);
    return transport.deliver(payload, receivers);
  };
  const auto weighted = run(true, 42);
  const auto unweighted = run(false, 42);
  EXPECT_TRUE(weighted.all_delivered);
  EXPECT_TRUE(unweighted.all_delivered);
  // Proactive replication trades a few extra copies for fewer feedback
  // rounds (the soft real-time goal of rekey transport).
  EXPECT_LE(weighted.rounds, unweighted.rounds);
}

TEST(WkaBkr, DeterministicForSameSeeds) {
  Rng payload_rng(10);
  const auto payload = synthetic_payload(150, payload_rng);
  auto run = [&] {
    Rng rng(77);
    auto receivers = make_receivers(100, 0.1, payload.size(), 5, rng);
    WkaBkrTransport transport({});
    return transport.deliver(payload, receivers);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.key_transmissions, b.key_transmissions);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
}

TEST(MultiSend, DeliversButCostsMore) {
  Rng rng(11);
  const auto payload = synthetic_payload(300, rng);

  Rng rng_a(55);
  auto receivers_a = make_receivers(200, 0.15, payload.size(), 8, rng_a);
  WkaBkrTransport wka({});
  const auto wka_report = wka.deliver(payload, receivers_a);

  Rng rng_b(55);
  auto receivers_b = make_receivers(200, 0.15, payload.size(), 8, rng_b);
  MultiSendTransport ms({});
  const auto ms_report = ms.deliver(payload, receivers_b);

  EXPECT_TRUE(wka_report.all_delivered);
  EXPECT_TRUE(ms_report.all_delivered);
  // The paper's motivation for WKA-BKR: multi-send re-sends everything and
  // pays for it.
  EXPECT_GT(ms_report.key_transmissions, wka_report.key_transmissions);
}

TEST(Fec, DeliversWithRealDecoding) {
  Rng rng(12);
  const auto payload = synthetic_payload(256, rng);
  auto receivers = make_receivers(100, 0.2, payload.size(), 8, rng);
  ProactiveFecTransport::Config config;
  config.verify_decoding = true;  // run the real GF(256) decoder in-line
  ProactiveFecTransport transport(config);
  const auto report = transport.deliver(payload, receivers);
  EXPECT_TRUE(report.all_delivered);
  for (const auto& r : receivers) EXPECT_TRUE(r.done());
}

TEST(Fec, ProactivityCutsFeedbackRounds) {
  Rng payload_rng(13);
  const auto payload = synthetic_payload(512, payload_rng);
  auto run = [&](double rho) {
    Rng rng(88);
    auto receivers = make_receivers(300, 0.1, payload.size(), 8, rng);
    ProactiveFecTransport::Config config;
    config.proactivity = rho;
    ProactiveFecTransport transport(config);
    return transport.deliver(payload, receivers);
  };
  const auto lean = run(1.0);
  const auto rich = run(1.5);
  EXPECT_TRUE(lean.all_delivered);
  EXPECT_TRUE(rich.all_delivered);
  EXPECT_LT(rich.rounds, lean.rounds);
}

TEST(Fec, LossFreeCostsExactlyInitialRound) {
  Rng rng(14);
  const auto payload = synthetic_payload(128, rng);
  auto receivers = make_receivers(50, 0.0, payload.size(), 4, rng);
  ProactiveFecTransport::Config config;
  config.proactivity = 1.0;  // no parity
  ProactiveFecTransport transport(config);
  const auto report = transport.deliver(payload, receivers);
  EXPECT_TRUE(report.all_delivered);
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_EQ(report.key_transmissions, 128u);
}

TEST(Transports, EmptyPayloadIsFree) {
  std::vector<crypto::WrappedKey> payload;
  std::vector<SessionReceiver> receivers;
  WkaBkrTransport wka({});
  MultiSendTransport ms({});
  ProactiveFecTransport fec({});
  for (RekeyTransport* t :
       std::initializer_list<RekeyTransport*>{&wka, &ms, &fec}) {
    const auto report = t->deliver(payload, receivers);
    EXPECT_TRUE(report.all_delivered);
    EXPECT_EQ(report.key_transmissions, 0u);
  }
}

}  // namespace
}  // namespace gk::transport
