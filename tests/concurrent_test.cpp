#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "partition/concurrent_server.h"
#include "partition/factory.h"

namespace gk::partition {
namespace {

using workload::make_member_id;
using workload::MemberProfile;

MemberProfile profile_of(std::uint64_t id) {
  MemberProfile p;
  p.id = make_member_id(id);
  return p;
}

TEST(ConcurrentServer, ParallelJoinsAllLand) {
  ConcurrentServer server(make_server(SchemeKind::kTt, 4, 5, Rng(1)));
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 250;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        (void)server.join(profile_of(static_cast<std::uint64_t>(t) * 10000 + i));
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(server.size(), kThreads * kPerThread);
  const auto out = server.end_epoch();
  EXPECT_EQ(out.joins, kThreads * kPerThread);
}

TEST(ConcurrentServer, MixedChurnWithCommitterThread) {
  ConcurrentServer server(make_server(SchemeKind::kQt, 4, 3, Rng(2)));
  // Seed population.
  for (std::uint64_t i = 0; i < 512; ++i) (void)server.join(profile_of(i));
  (void)server.end_epoch();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> next_id{100000};
  std::atomic<std::uint64_t> commits{0};

  // Committer: periodic batch rekeying, as the Tp timer would.
  std::thread committer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)server.end_epoch();
      // relaxed: a plain event counter; it is only read after join().
      commits.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  // Front-ends: each thread churns its own id range (join then leave), so
  // no cross-thread double-leave races at the workload level.
  std::vector<std::thread> frontends;
  for (int t = 0; t < 6; ++t) {
    frontends.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        // relaxed: ids only need to be unique, not ordered across threads.
        const auto id = next_id.fetch_add(1, std::memory_order_relaxed);
        (void)server.join(profile_of(id));
        if (i % 2 == 0) server.leave(make_member_id(id));
      }
    });
  }
  for (auto& thread : frontends) thread.join();
  stop.store(true, std::memory_order_release);
  committer.join();

  // 6 threads x 400 joins, half leave again, on top of the 512 seeds.
  EXPECT_EQ(server.size(), 512u + 6u * 400u / 2u);
  // relaxed: the committer thread was joined above.
  EXPECT_GT(commits.load(std::memory_order_relaxed), 0u);
  // The tree is still coherent: one more epoch commits cleanly.
  const auto out = server.end_epoch();
  (void)out;
  EXPECT_EQ(server.size(), 512u + 6u * 400u / 2u);
}

TEST(ConcurrentServer, ReadersNeverObserveTornState) {
  ConcurrentServer server(make_server(SchemeKind::kOneKeyTree, 4, 0, Rng(3)));
  for (std::uint64_t i = 0; i < 128; ++i) (void)server.join(profile_of(i));
  (void)server.end_epoch();

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // group_key_id is fixed; a torn read of the key would pair a stale
      // version with a fresh id or vice versa — detect by re-reading.
      const auto a = server.group_key();
      const auto b = server.group_key();
      // relaxed: a sticky flag, read only after the reader thread joins.
      if (b.version < a.version) torn.store(true, std::memory_order_relaxed);
    }
  });

  std::uint64_t previous = 0;
  bool have_previous = false;
  for (std::uint64_t round = 0; round < 200; ++round) {
    const auto id = 10000 + round;
    (void)server.join(profile_of(id));
    if (have_previous) server.leave(make_member_id(previous));
    previous = id;
    have_previous = true;
    (void)server.end_epoch();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  // relaxed: the reader thread was joined above.
  EXPECT_FALSE(torn.load(std::memory_order_relaxed));
}

}  // namespace
}  // namespace gk::partition
