#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "lkh/key_ring.h"
#include "partition/adaptive.h"
#include "partition/factory.h"
#include "partition/one_keytree_server.h"
#include "partition/qt_server.h"
#include "partition/tt_server.h"

namespace gk::partition {
namespace {

using workload::make_member_id;
using workload::MemberClass;
using workload::MemberProfile;

MemberProfile profile_of(std::uint64_t id, MemberClass cls = MemberClass::kShort) {
  MemberProfile p;
  p.id = make_member_id(id);
  p.member_class = cls;
  return p;
}

/// Drives any RekeyServer together with live member key rings, applying
/// relocation notices the way the simulator does.
class Harness {
 public:
  explicit Harness(std::unique_ptr<RekeyServer> server) : server_(std::move(server)) {}

  void join(std::uint64_t id, MemberClass cls = MemberClass::kShort) {
    const auto reg = server_->join(profile_of(id, cls));
    rings_.emplace(id, lkh::KeyRing(make_member_id(id), reg.leaf_id, reg.individual_key));
    individual_.emplace(id, reg.individual_key);
  }

  void leave(std::uint64_t id) {
    server_->leave(make_member_id(id));
    evicted_.insert(std::move(rings_.extract(id)));
  }

  EpochOutput end_epoch(const std::vector<Relocation>* relocations_out = nullptr) {
    auto out = server_->end_epoch();
    apply_relocations();
    for (auto& [id, ring] : rings_) ring.process(out.message);
    for (auto& [id, ring] : evicted_) ring.process(out.message);
    (void)relocations_out;
    return out;
  }

  [[nodiscard]] bool in_sync(std::uint64_t id) const {
    return rings_.at(id).holds(server_->group_key_id(), server_->group_key().version);
  }

  [[nodiscard]] bool evicted_in_sync(std::uint64_t id) const {
    return evicted_.at(id).holds(server_->group_key_id(), server_->group_key().version);
  }

  RekeyServer& server() { return *server_; }

 private:
  void apply_relocations() {
    auto* core = dynamic_cast<engine::CoreServer*>(server_.get());
    if (core == nullptr) return;
    const std::vector<Relocation>* relocations = &core->core().last_relocations();
    for (const auto& move : *relocations) {
      const auto id = workload::raw(move.member);
      const auto it = rings_.find(id);
      if (it == rings_.end()) continue;
      it->second.grant(move.new_leaf_id, {individual_.at(id), 0});
    }
  }

  std::unique_ptr<RekeyServer> server_;
  std::map<std::uint64_t, lkh::KeyRing> rings_;
  std::map<std::uint64_t, lkh::KeyRing> evicted_;
  std::map<std::uint64_t, crypto::Key128> individual_;
};

struct SchemeCase {
  SchemeKind kind;
  unsigned k;
};

class AllSchemes : public ::testing::TestWithParam<SchemeCase> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemes,
    ::testing::Values(SchemeCase{SchemeKind::kOneKeyTree, 0},
                      SchemeCase{SchemeKind::kQt, 3}, SchemeCase{SchemeKind::kQt, 0},
                      SchemeCase{SchemeKind::kTt, 3}, SchemeCase{SchemeKind::kTt, 0},
                      SchemeCase{SchemeKind::kPt, 0}),
    [](const ::testing::TestParamInfo<SchemeCase>& param_info) {
      const char* name = "Unknown";
      switch (param_info.param.kind) {
        case SchemeKind::kOneKeyTree: name = "OneKeytree"; break;
        case SchemeKind::kQt: name = "Qt"; break;
        case SchemeKind::kTt: name = "Tt"; break;
        case SchemeKind::kPt: name = "Pt"; break;
      }
      return std::string(name) + "K" + std::to_string(param_info.param.k);
    });

TEST_P(AllSchemes, JoinersLearnGroupKey) {
  const auto param = GetParam();
  Harness h(make_server(param.kind, 3, param.k, Rng(101)));
  for (std::uint64_t i = 0; i < 20; ++i)
    h.join(i, i % 3 == 0 ? MemberClass::kLong : MemberClass::kShort);
  h.end_epoch();
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_TRUE(h.in_sync(i)) << "member " << i;
}

TEST_P(AllSchemes, SurvivorsRecoverAfterDepartures) {
  const auto param = GetParam();
  Harness h(make_server(param.kind, 3, param.k, Rng(102)));
  for (std::uint64_t i = 0; i < 16; ++i)
    h.join(i, i % 2 == 0 ? MemberClass::kLong : MemberClass::kShort);
  h.end_epoch();
  h.leave(3);
  h.leave(8);
  h.end_epoch();
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (i == 3 || i == 8) continue;
    EXPECT_TRUE(h.in_sync(i)) << "member " << i;
  }
}

TEST_P(AllSchemes, EvictedMembersCannotFollow) {
  const auto param = GetParam();
  Harness h(make_server(param.kind, 3, param.k, Rng(103)));
  for (std::uint64_t i = 0; i < 12; ++i) h.join(i);
  h.end_epoch();
  h.leave(5);
  h.end_epoch();
  EXPECT_FALSE(h.evicted_in_sync(5));
  // ...and it stays locked out across later epochs.
  h.join(50);
  h.end_epoch();
  EXPECT_FALSE(h.evicted_in_sync(5));
}

TEST_P(AllSchemes, SteadyChurnKeepsEveryoneCurrent) {
  const auto param = GetParam();
  Harness h(make_server(param.kind, 4, param.k, Rng(104)));
  Rng rng(105);
  std::vector<std::uint64_t> present;
  std::uint64_t next_id = 0;

  for (int epoch = 0; epoch < 12; ++epoch) {
    const auto joins = 2 + rng.uniform_u64(5);
    for (std::uint64_t j = 0; j < joins; ++j) {
      h.join(next_id, rng.bernoulli(0.7) ? MemberClass::kShort : MemberClass::kLong);
      present.push_back(next_id++);
    }
    const auto leaves = rng.uniform_u64(std::min<std::uint64_t>(present.size(), 4));
    for (std::uint64_t l = 0; l < leaves; ++l) {
      const auto idx = rng.uniform_u64(present.size());
      h.leave(present[idx]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    h.end_epoch();
    for (const auto id : present)
      ASSERT_TRUE(h.in_sync(id)) << "member " << id << " epoch " << epoch
                                 << " scheme " << to_string(param.kind);
  }
}

TEST_P(AllSchemes, MemberPathEndsAtGroupKey) {
  const auto param = GetParam();
  Harness h(make_server(param.kind, 3, param.k, Rng(106)));
  for (std::uint64_t i = 0; i < 10; ++i) h.join(i);
  h.end_epoch();
  const auto path = h.server().member_path(make_member_id(4));
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), h.server().group_key_id());
}

// -------------------------------------------------------- migrations ----

TEST(TtServer, MigrationMovesMembersAfterSPeriod) {
  TtServer server(3, 2, Rng(107));
  Harness h(std::make_unique<TtServer>(3, 2, Rng(107)));
  for (std::uint64_t i = 0; i < 9; ++i) h.join(i);
  auto* tt = dynamic_cast<TtServer*>(&h.server());
  ASSERT_NE(tt, nullptr);

  auto out0 = h.end_epoch();  // epoch 0: everyone in S
  EXPECT_EQ(out0.migrations, 0u);
  EXPECT_EQ(tt->s_partition_size(), 9u);
  EXPECT_EQ(tt->l_partition_size(), 0u);

  auto out1 = h.end_epoch();  // epoch 1: still too young
  EXPECT_EQ(out1.migrations, 0u);

  auto out2 = h.end_epoch();  // epoch 2: joined at 0, 2 >= 0 + 2 -> migrate
  EXPECT_EQ(out2.migrations, 9u);
  EXPECT_EQ(tt->s_partition_size(), 0u);
  EXPECT_EQ(tt->l_partition_size(), 9u);
  for (std::uint64_t i = 0; i < 9; ++i) EXPECT_TRUE(h.in_sync(i)) << "member " << i;
}

TEST(TtServer, MigrationDoesNotRotateGroupKey) {
  Harness h(std::make_unique<TtServer>(3, 1, Rng(108)));
  for (std::uint64_t i = 0; i < 6; ++i) h.join(i);
  h.end_epoch();
  const auto version_before = h.server().group_key().version;
  const auto out = h.end_epoch();  // migration-only epoch
  EXPECT_EQ(out.migrations, 6u);
  EXPECT_EQ(h.server().group_key().version, version_before);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_TRUE(h.in_sync(i));
}

TEST(QtServer, MigrationKeepsMembersInSync) {
  Harness h(std::make_unique<QtServer>(3, 1, Rng(109)));
  for (std::uint64_t i = 0; i < 8; ++i) h.join(i);
  h.end_epoch();
  const auto out = h.end_epoch();  // all migrate to L-tree
  EXPECT_EQ(out.migrations, 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(h.in_sync(i)) << "member " << i;

  // A later departure must still lock only the leaver out.
  h.leave(2);
  h.end_epoch();
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(h.in_sync(i)) << "member " << i;
  }
  EXPECT_FALSE(h.evicted_in_sync(2));
}

TEST(QtServer, QueueDepartureCostsQueueSizePlusRoot) {
  QtServer server(4, 10, Rng(110));
  for (std::uint64_t i = 0; i < 20; ++i) (void)server.join(profile_of(i));
  (void)server.end_epoch();

  server.leave(make_member_id(7));
  const auto out = server.end_epoch();
  // 19 queue residents re-wrapped individually; the L-tree is empty, so no
  // root wrap and no tree message.
  EXPECT_EQ(out.multicast_cost(), 19u);
}

TEST(QtServer, JoinOnlyEpochIsCheap) {
  QtServer server(4, 10, Rng(111));
  for (std::uint64_t i = 0; i < 50; ++i) (void)server.join(profile_of(i));
  (void)server.end_epoch();

  for (std::uint64_t i = 50; i < 53; ++i) (void)server.join(profile_of(i));
  const auto out = server.end_epoch();
  // 1 wrap under the previous DEK + one per arrival — independent of the
  // 50 incumbents.
  EXPECT_EQ(out.multicast_cost(), 1u + 3u);
}

// ---------------------------------------------------------- adaptive ----

TEST(Adaptive, FitRecoversPlantedMixture) {
  AdaptiveController controller(60.0, 4);
  Rng rng(112);
  for (int i = 0; i < 20000; ++i) {
    const bool is_short = rng.bernoulli(0.8);
    controller.observe_duration(rng.exponential(is_short ? 180.0 : 10800.0));
  }
  const auto fit = controller.fit();
  EXPECT_TRUE(fit.well_separated);
  EXPECT_NEAR(fit.short_fraction, 0.8, 0.05);
  EXPECT_NEAR(fit.short_mean, 180.0, 40.0);
  EXPECT_NEAR(fit.long_mean, 10800.0, 1500.0);
}

TEST(Adaptive, RecommendsPartitioningForChurnyGroups) {
  AdaptiveController controller(60.0, 4);
  Rng rng(113);
  for (int i = 0; i < 20000; ++i) {
    const bool is_short = rng.bernoulli(0.8);
    controller.observe_duration(rng.exponential(is_short ? 180.0 : 10800.0));
  }
  const auto rec = controller.recommend(65536.0);
  EXPECT_NE(rec.scheme, SchemeKind::kOneKeyTree);
  EXPECT_GT(rec.s_period_epochs, 0u);
  EXPECT_LT(rec.predicted_cost, rec.baseline_cost);
  // Fig. 4 peak region: the recommendation should realize most of the
  // paper's ~25% gain at alpha = 0.8.
  EXPECT_GT(1.0 - rec.predicted_cost / rec.baseline_cost, 0.15);
}

TEST(Adaptive, FallsBackWithFewObservations) {
  AdaptiveController controller(60.0, 4);
  for (int i = 0; i < 10; ++i) controller.observe_duration(100.0);
  const auto rec = controller.recommend(65536.0);
  EXPECT_EQ(rec.scheme, SchemeKind::kOneKeyTree);
  EXPECT_EQ(rec.s_period_epochs, 0u);
}

TEST(Adaptive, StableGroupsStayOnOneKeytree) {
  AdaptiveController controller(60.0, 4);
  Rng rng(114);
  // Homogeneous long-lived population: partitioning has nothing to win.
  for (int i = 0; i < 5000; ++i) controller.observe_duration(rng.exponential(7200.0));
  const auto rec = controller.recommend(65536.0);
  EXPECT_EQ(rec.scheme, SchemeKind::kOneKeyTree);
}

}  // namespace
}  // namespace gk::partition
