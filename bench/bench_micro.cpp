// google-benchmark microbenchmarks of the building blocks: crypto
// primitives, key-tree operations, OFT operations, and the analytic
// kernels. These quantify the key server's CPU cost per membership event,
// complementing the figures' bandwidth metrics.

#include <benchmark/benchmark.h>

#include <vector>

#include "analytic/batch_cost.h"
#include "analytic/wka_bkr_model.h"
#include "common/rng.h"
#include "crypto/keywrap.h"
#include "crypto/sha256.h"
#include "lkh/key_ring.h"
#include "lkh/key_tree.h"
#include "oft/oft_tree.h"

namespace {

using namespace gk;

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    auto digest = crypto::sha256(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_WrapUnwrap(benchmark::State& state) {
  Rng rng(1);
  const auto kek = crypto::Key128::random(rng);
  const auto payload = crypto::Key128::random(rng);
  for (auto _ : state) {
    const auto wrapped =
        crypto::wrap_key(kek, crypto::make_key_id(1), 0, payload,
                         crypto::make_key_id(2), 1, rng);
    auto unwrapped = crypto::unwrap_key(kek, wrapped);
    benchmark::DoNotOptimize(unwrapped);
  }
}
BENCHMARK(BM_WrapUnwrap);

void BM_KeyTreeJoinCommit(benchmark::State& state) {
  const auto group_size = static_cast<std::uint64_t>(state.range(0));
  lkh::KeyTree tree(4, Rng(2));
  for (std::uint64_t i = 0; i < group_size; ++i)
    tree.insert(workload::make_member_id(i));
  (void)tree.commit(0);

  std::uint64_t next = group_size;
  std::uint64_t epoch = 1;
  for (auto _ : state) {
    tree.insert(workload::make_member_id(next++));
    auto message = tree.commit(epoch++);
    benchmark::DoNotOptimize(message);
    state.PauseTiming();
    tree.remove(workload::make_member_id(next - 1));  // hold size steady
    (void)tree.commit(epoch++);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_KeyTreeJoinCommit)->Arg(1024)->Arg(16384);

void BM_KeyTreeBatchCommit(benchmark::State& state) {
  const auto group_size = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t batch = 64;
  lkh::KeyTree tree(4, Rng(3));
  for (std::uint64_t i = 0; i < group_size; ++i)
    tree.insert(workload::make_member_id(i));
  (void)tree.commit(0);

  Rng rng(4);
  std::uint64_t next = group_size;
  std::uint64_t epoch = 1;
  std::vector<std::uint64_t> present(group_size);
  for (std::uint64_t i = 0; i < group_size; ++i) present[i] = i;

  for (auto _ : state) {
    for (std::uint64_t b = 0; b < batch; ++b) {
      const auto victim = rng.uniform_u64(present.size());
      tree.remove(workload::make_member_id(present[victim]));
      present[victim] = next;
      tree.insert(workload::make_member_id(next++));
    }
    auto message = tree.commit(epoch++);
    benchmark::DoNotOptimize(message);
  }
}
BENCHMARK(BM_KeyTreeBatchCommit)->Arg(4096)->Arg(65536);

void BM_KeyRingProcess(benchmark::State& state) {
  lkh::KeyTree tree(4, Rng(5));
  std::vector<lkh::KeyTree::JoinGrant> grants;
  for (std::uint64_t i = 0; i < 4096; ++i)
    grants.push_back(tree.insert(workload::make_member_id(i)));
  (void)tree.commit(0);
  for (std::uint64_t i = 0; i < 64; ++i) tree.remove(workload::make_member_id(i));
  const auto message = tree.commit(1);

  for (auto _ : state) {
    lkh::KeyRing ring(workload::make_member_id(100), grants[100].leaf_id,
                      grants[100].individual_key);
    auto learned = ring.process(message);
    benchmark::DoNotOptimize(learned);
  }
}
BENCHMARK(BM_KeyRingProcess);

void BM_OftLeave(benchmark::State& state) {
  const auto group_size = static_cast<std::uint64_t>(state.range(0));
  oft::OftTree tree(Rng(6));
  lkh::RekeyMessage scratch;
  for (std::uint64_t i = 0; i < group_size; ++i) {
    scratch.wraps.clear();
    (void)tree.join(workload::make_member_id(i), scratch);
  }
  std::uint64_t next = group_size;
  std::uint64_t victim = 0;
  for (auto _ : state) {
    lkh::RekeyMessage message;
    tree.leave(workload::make_member_id(victim++), message);
    benchmark::DoNotOptimize(message);
    state.PauseTiming();
    lkh::RekeyMessage rejoin;
    (void)tree.join(workload::make_member_id(next++), rejoin);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_OftLeave)->Arg(1024)->Arg(8192);

void BM_AnalyticBatchCost(benchmark::State& state) {
  for (auto _ : state) {
    const double cost = analytic::batch_rekey_cost(65536.0, 1684.0, 4);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_AnalyticBatchCost);

void BM_ExpectedTransmissions(benchmark::State& state) {
  const std::vector<analytic::LossClass> losses{{0.02, 0.7}, {0.20, 0.3}};
  for (auto _ : state) {
    const double m = analytic::expected_transmissions(16384.0, losses);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ExpectedTransmissions);

}  // namespace

BENCHMARK_MAIN();
