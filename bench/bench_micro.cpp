// google-benchmark microbenchmarks of the building blocks: crypto
// primitives, key-tree operations, OFT operations, and the analytic
// kernels. These quantify the key server's CPU cost per membership event,
// complementing the figures' bandwidth metrics.

#include <benchmark/benchmark.h>

#include <vector>

#include "analytic/batch_cost.h"
#include "analytic/wka_bkr_model.h"
#include "common/rng.h"
#include "crypto/keywrap.h"
#include "crypto/sha256.h"
#include "lkh/key_ring.h"
#include "lkh/key_tree.h"
#include "oft/oft_tree.h"

namespace {

using namespace gk;

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    auto digest = crypto::sha256(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_WrapUnwrap(benchmark::State& state) {
  Rng rng(1);
  const auto kek = crypto::Key128::random(rng);
  const auto payload = crypto::Key128::random(rng);
  for (auto _ : state) {
    const auto wrapped =
        crypto::wrap_key(kek, crypto::make_key_id(1), 0, payload,
                         crypto::make_key_id(2), 1, rng);
    auto unwrapped = crypto::unwrap_key(kek, wrapped);
    benchmark::DoNotOptimize(unwrapped);
  }
}
BENCHMARK(BM_WrapUnwrap);

// One join-commit plus one leave-commit per iteration, measured *together*:
// the former Pause/ResumeTiming around the compensating leave added a known
// ~100ns+ per-call overhead that swamped small commits and distorted the
// steady state. The pair is the natural churn unit anyway (group size stays
// pinned), and the reported time is simply "one epoch of each kind".
// Arg(1) selects the crypto mode: 1 = engine (cached per-node KEK
// expansions), 0 = seed-crypto (one expansion per wrap, the seed's cost).
void BM_KeyTreeJoinLeaveCommit(benchmark::State& state) {
  const auto group_size = static_cast<std::uint64_t>(state.range(0));
  const bool engine_mode = state.range(1) != 0;
  lkh::KeyTree tree(4, Rng(2));
  tree.reserve(group_size);
  for (std::uint64_t i = 0; i < group_size; ++i)
    tree.insert(workload::make_member_id(i));
  (void)tree.commit(0);
  tree.set_wrap_cache(engine_mode);

  std::uint64_t next = group_size;
  std::uint64_t epoch = 1;
  std::uint64_t wraps = 0;
  for (auto _ : state) {
    tree.insert(workload::make_member_id(next++));
    auto join_message = tree.commit(epoch++);
    wraps += join_message.cost();
    benchmark::DoNotOptimize(join_message);
    tree.remove(workload::make_member_id(next - 1));  // hold size steady
    auto leave_message = tree.commit(epoch++);
    wraps += leave_message.cost();
    benchmark::DoNotOptimize(leave_message);
  }
  state.counters["wraps/s"] =
      benchmark::Counter(static_cast<double>(wraps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KeyTreeJoinLeaveCommit)
    ->ArgNames({"n", "engine"})
    ->Args({1024, 1})
    ->Args({1024, 0})
    ->Args({16384, 1})
    ->Args({16384, 0});

void BM_KeyTreeBatchCommit(benchmark::State& state) {
  const auto group_size = static_cast<std::uint64_t>(state.range(0));
  const bool engine_mode = state.range(1) != 0;
  const std::uint64_t batch = 64;
  lkh::KeyTree tree(4, Rng(3));
  tree.reserve(group_size);
  for (std::uint64_t i = 0; i < group_size; ++i)
    tree.insert(workload::make_member_id(i));
  (void)tree.commit(0);
  tree.set_wrap_cache(engine_mode);

  Rng rng(4);
  std::uint64_t next = group_size;
  std::uint64_t epoch = 1;
  std::uint64_t wraps = 0;
  std::vector<std::uint64_t> present(group_size);
  for (std::uint64_t i = 0; i < group_size; ++i) present[i] = i;

  for (auto _ : state) {
    for (std::uint64_t b = 0; b < batch; ++b) {
      const auto victim = rng.uniform_u64(present.size());
      tree.remove(workload::make_member_id(present[victim]));
      present[victim] = next;
      tree.insert(workload::make_member_id(next++));
    }
    auto message = tree.commit(epoch++);
    wraps += message.cost();
    benchmark::DoNotOptimize(message);
  }
  state.counters["wraps/s"] =
      benchmark::Counter(static_cast<double>(wraps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KeyTreeBatchCommit)
    ->ArgNames({"n", "engine"})
    ->Args({4096, 1})
    ->Args({4096, 0})
    ->Args({65536, 1})
    ->Args({65536, 0});

void BM_WrapBatchSharedKek(benchmark::State& state) {
  // The batched kernel amortizes one KEK expansion across the whole batch;
  // compare against BM_WrapUnwrap's per-call expansion.
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrapRequest> requests(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    requests[i].payload = crypto::Key128::random(rng);
    requests[i].target_id = crypto::make_key_id(100 + i);
    requests[i].target_version = 1;
    requests[i].nonce = crypto::derive_wrap_nonce(1, crypto::make_key_id(100 + i), 0);
  }
  std::vector<crypto::WrappedKey> out(batch);
  for (auto _ : state) {
    crypto::wrap_keys_batch(kek, crypto::make_key_id(1), 0, requests,
                            std::span<crypto::WrappedKey>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_WrapBatchSharedKek)->Arg(16)->Arg(256);

void BM_KeyRingProcess(benchmark::State& state) {
  lkh::KeyTree tree(4, Rng(5));
  std::vector<lkh::KeyTree::JoinGrant> grants;
  for (std::uint64_t i = 0; i < 4096; ++i)
    grants.push_back(tree.insert(workload::make_member_id(i)));
  (void)tree.commit(0);
  for (std::uint64_t i = 0; i < 64; ++i) tree.remove(workload::make_member_id(i));
  const auto message = tree.commit(1);

  for (auto _ : state) {
    lkh::KeyRing ring(workload::make_member_id(100), grants[100].leaf_id,
                      grants[100].individual_key);
    auto learned = ring.process(message);
    benchmark::DoNotOptimize(learned);
  }
}
BENCHMARK(BM_KeyRingProcess);

void BM_OftLeave(benchmark::State& state) {
  const auto group_size = static_cast<std::uint64_t>(state.range(0));
  oft::OftTree tree(Rng(6));
  lkh::RekeyMessage scratch;
  for (std::uint64_t i = 0; i < group_size; ++i) {
    scratch.wraps.clear();
    (void)tree.join(workload::make_member_id(i), scratch);
  }
  // Leave + compensating join measured together (same steady-state reasoning
  // as BM_KeyTreeJoinLeaveCommit: Pause/ResumeTiming overhead is larger than
  // a small OFT operation).
  std::uint64_t next = group_size;
  std::uint64_t victim = 0;
  for (auto _ : state) {
    lkh::RekeyMessage message;
    tree.leave(workload::make_member_id(victim++), message);
    benchmark::DoNotOptimize(message);
    lkh::RekeyMessage rejoin;
    (void)tree.join(workload::make_member_id(next++), rejoin);
    benchmark::DoNotOptimize(rejoin);
  }
}
BENCHMARK(BM_OftLeave)->Arg(1024)->Arg(8192);

void BM_AnalyticBatchCost(benchmark::State& state) {
  for (auto _ : state) {
    const double cost = analytic::batch_rekey_cost(65536.0, 1684.0, 4);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_AnalyticBatchCost);

void BM_ExpectedTransmissions(benchmark::State& state) {
  const std::vector<analytic::LossClass> losses{{0.02, 0.7}, {0.20, 0.3}};
  for (auto _ : state) {
    const double m = analytic::expected_transmissions(16384.0, losses);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ExpectedTransmissions);

}  // namespace

BENCHMARK_MAIN();
