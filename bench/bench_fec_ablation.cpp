// Section 4.4's side result: under proactive-FEC rekey transport the
// loss-homogenized organization gains even more than under WKA-BKR — the
// paper reports up to 25.7% at ph=20%, pl=2%, alpha=0.1 — because FEC
// parity is provisioned for the worst receivers of every block.
//
// This bench evaluates the analytic FEC model (blocks, proactive parity,
// NACK-driven max-deficit retransmission) and cross-validates with the real
// GF(256) Reed-Solomon transport over a simulated lossy channel.

#include <cmath>
#include <iostream>

#include "analytic/batch_cost.h"
#include "analytic/fec_model.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/transport_sim.h"

namespace {

constexpr double kLow = 0.02;
constexpr double kHigh = 0.20;
constexpr double kN = 65536.0;
constexpr double kL = 256.0;
constexpr unsigned kKeysPerPacket = 16;

double payload_packets(double members, double departures) {
  return std::ceil(gk::analytic::batch_rekey_cost(members, departures, 4) /
                   kKeysPerPacket);
}

double fec_cost(double members, double departures,
                std::vector<gk::analytic::LossClass> losses) {
  gk::analytic::FecParams p;
  p.source_packets = payload_packets(members, departures);
  p.block_size = 16;
  p.proactivity = 1.25;
  p.receivers = members;
  p.losses = std::move(losses);
  return gk::analytic::fec_payload_cost(p) * kKeysPerPacket;  // key-equivalents
}

}  // namespace

int main() {
  using namespace gk;
  bench::banner("Section 4.4 ablation — loss homogenization under proactive FEC",
                "N=65536, L=256, ph=20%, pl=2%, k=16, rho=1.25; alpha swept");

  Table table({"alpha", "One-keytree (FEC)", "Loss-homogenized (FEC)", "gain %"});
  double peak = 0.0;
  double peak_alpha = 0.0;
  for (const double alpha : {0.05, 0.1, 0.2, 0.3, 0.5, 0.8}) {
    const double one =
        fec_cost(kN, kL, {{kLow, 1.0 - alpha}, {kHigh, alpha}});
    const double homog = fec_cost((1.0 - alpha) * kN, (1.0 - alpha) * kL,
                                  {{kLow, 1.0}}) +
                         fec_cost(alpha * kN, alpha * kL, {{kHigh, 1.0}});
    const double gain = bench::gain_pct(one, homog);
    if (gain > peak) {
      peak = gain;
      peak_alpha = alpha;
    }
    table.add_row({alpha, one, homog, gain}, 2);
  }
  bench::print_with_csv(table, "FEC transport (analytic): one tree vs loss-homogenized");
  std::cout << "Measured peak FEC gain: " << fmt(peak, 1) << "% at alpha = "
            << fmt(peak_alpha, 2) << "   (paper: up to 25.7% at alpha = 0.1)\n";

  // Real RS-coded transport at N=4096.
  Table simtab({"alpha", "organization", "keys/epoch (sim)"});
  for (const double alpha : {0.1, 0.3}) {
    for (const auto org : {sim::TransportSimConfig::Organization::kOneTree,
                           sim::TransportSimConfig::Organization::kLossHomogenized}) {
      sim::TransportSimConfig config;
      config.organization = org;
      config.protocol = sim::TransportSimConfig::Protocol::kProactiveFec;
      config.group_size = 4096;
      config.departures_per_epoch = 16;
      config.high_fraction = alpha;
      config.epochs = 8;
      config.warmup_epochs = 2;
      config.seed = 31337;
      const auto result = sim::run_transport_sim(config);
      simtab.add_row(
          {fmt(alpha, 1),
           org == sim::TransportSimConfig::Organization::kOneTree ? "one-tree"
                                                                  : "loss-homogenized",
           fmt(result.keys_per_epoch.mean(), 1)});
    }
  }
  bench::print_with_csv(simtab, "FEC transport cross-validation (real RS code, N=4096)");
  return 0;
}
