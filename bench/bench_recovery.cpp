// Recovery-cost study (beyond the paper): the paper assumes a key server
// that never fails mid-batch. This bench quantifies what durability costs
// under that assumption's removal:
//   1. Crash-transparency — a server that crashes before *every* commit and
//      recovers from its write-ahead journal must multicast exactly the
//      same number of keys as a crash-free run (recovery is free on the
//      wire; the price is paid in local replay time and journal bytes).
//   2. Checkpoint cadence — how journal size and replay latency trade off
//      against checkpoint frequency.
//   3. Resync vs re-key — unicast catch-up bundles for desynchronized
//      members cost O(depth) keys each, versus the group-wide multicast a
//      naive "just re-add them" policy would trigger.
//   4. Failover time — with standby replicas fed by journal shipping, the
//      span from leader death to the first committed epoch on the promoted
//      leader (election + promotion + pending-epoch regeneration).
//
// Results are printed as tables and appended as one run record to
// BENCH_recovery.json so successive commits accumulate a trajectory for
// the recovery-latency and failover-time metrics.
//
// Usage: bench_recovery [--json PATH]

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "faultsim/harness.h"
#include "partition/factory.h"
#include "partition/journaled_server.h"
#include "partition/one_keytree_server.h"
#include "replica/cluster.h"
#include "workload/member.h"

namespace {

using namespace gk;

const char* kind_name(faultsim::ServerKind kind) {
  switch (kind) {
    case faultsim::ServerKind::kOneKeyTree: return "one-tree";
    case faultsim::ServerKind::kQt: return "QT";
    case faultsim::ServerKind::kTt: return "TT";
    case faultsim::ServerKind::kLossHomogenized: return "loss-homog";
  }
  return "?";
}

faultsim::HarnessConfig base_config(faultsim::ServerKind kind) {
  faultsim::HarnessConfig config;
  config.kind = kind;
  config.initial_members = 64;
  config.joins_per_epoch = 4;
  config.leaves_per_epoch = 4;
  config.epochs = 24;
  config.member_loss = 0.05;
  config.seed = 17;
  return config;
}

void crash_transparency() {
  Table table({"scheme", "multicast keys (clean)", "multicast keys (crash/epoch)",
               "recoveries", "identical group keys"});
  for (const auto kind :
       {faultsim::ServerKind::kOneKeyTree, faultsim::ServerKind::kQt,
        faultsim::ServerKind::kTt, faultsim::ServerKind::kLossHomogenized}) {
    auto clean_config = base_config(kind);
    auto crashy_config = clean_config;
    crashy_config.faults.server_crash = 1.0;  // every single commit
    const auto clean = faultsim::run_harness(clean_config);
    const auto crashy = faultsim::run_harness(crashy_config);
    bool identical = clean.group_key_history.size() == crashy.group_key_history.size();
    for (std::size_t e = 0; identical && e < clean.group_key_history.size(); ++e)
      identical = clean.group_key_history[e].key == crashy.group_key_history[e].key &&
                  clean.group_key_history[e].version == crashy.group_key_history[e].version;
    table.add_row({kind_name(kind),
                   fmt(static_cast<double>(clean.multicast_key_transmissions), 0),
                   fmt(static_cast<double>(crashy.multicast_key_transmissions), 0),
                   fmt(static_cast<double>(crashy.recoveries), 0),
                   identical ? "yes" : "NO"});
  }
  bench::print_with_csv(table, "Crash-transparency: wire cost with and without crashes");
}

struct CadenceRow {
  std::size_t cadence = 0;
  std::size_t journal_bytes = 0;
  std::size_t replay_ops = 0;
  long long recovery_us = 0;
};

struct FailoverRow {
  std::string scheme;
  std::size_t standbys = 0;
  long long failover_us = 0;
  std::uint64_t term = 0;
};

std::vector<CadenceRow> checkpoint_cadence() {
  std::vector<CadenceRow> rows;
  Table table({"checkpoint every", "journal bytes at crash", "replay ops",
               "recovery latency (us)"});
  for (const std::size_t cadence : {1u, 4u, 16u, 64u}) {
    partition::JournaledServer::Config journal_config;
    journal_config.checkpoint_every = cadence;
    auto make_blank = [] {
      return std::make_unique<partition::OneKeyTreeServer>(4, Rng(99));
    };
    partition::JournaledServer server(make_blank(), journal_config);
    std::uint64_t next = 1;
    auto join_one = [&] {
      workload::MemberProfile profile;
      profile.id = workload::make_member_id(next++);
      profile.member_class = workload::MemberClass::kLong;
      profile.join_time = 0.0;
      profile.duration = 64.0;
      profile.loss_rate = 0.02;
      (void)server.join(profile);
    };
    for (int m = 0; m < 64; ++m) join_one();
    std::size_t replayed_ops = 0;
    for (int epoch = 0; epoch < 63; ++epoch) {
      join_one();
      server.leave(workload::make_member_id(static_cast<std::uint64_t>(epoch) + 1));
      (void)server.end_epoch();
      replayed_ops += 2;
    }
    join_one();  // journaled but uncommitted: part of the interrupted batch
    server.arm_crash_before_commit();
    try {
      (void)server.end_epoch();
    } catch (const partition::ServerCrashed&) {
    }
    const auto journal = server.journal_bytes();
    const auto start = std::chrono::steady_clock::now();
    auto recovery =
        partition::JournaledServer::recover(journal, make_blank(), journal_config);
    const auto stop = std::chrono::steady_clock::now();
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(stop - start).count();
    if (!recovery.pending.has_value())
      std::cout << "WARNING: no interrupted epoch recovered\n";
    // Ops since the last checkpoint (the only part that replays slowly).
    const std::size_t tail_ops = (63 % cadence) * 2 + 1;
    (void)replayed_ops;
    table.add_row({fmt(static_cast<double>(cadence), 0),
                   fmt(static_cast<double>(journal.size()), 0),
                   fmt(static_cast<double>(tail_ops), 0),
                   fmt(static_cast<double>(micros), 0)});
    rows.push_back({cadence, journal.size(), tail_ops, micros});
  }
  bench::print_with_csv(table, "Checkpoint cadence vs journal size and replay latency");
  return rows;
}

/// Leader kill to first committed epoch on the promoted standby: the
/// COMMIT_BEGIN tail ships as the leader dies, then election, promotion,
/// and the eager replay that regenerates the interrupted epoch all run
/// inside failover().
std::vector<FailoverRow> failover_time() {
  std::vector<FailoverRow> rows;
  Table table({"scheme", "standbys", "failover (us)", "new term", "pending epoch"});
  for (const char* scheme : {"one-tree", "qt", "tt", "loss-bin"}) {
    partition::SchemeConfig scheme_config;
    scheme_config.degree = 4;
    replica::ReplicaCluster::Config config;
    config.standbys = 3;
    config.journal.checkpoint_every = 4;
    replica::ReplicaCluster cluster(
        [&] { return partition::make_server(scheme, scheme_config, Rng(41)); },
        config);
    std::uint64_t next = 1;
    const auto join_one = [&](double epoch) {
      workload::MemberProfile profile;
      profile.id = workload::make_member_id(next++);
      profile.member_class = workload::MemberClass::kLong;
      profile.join_time = epoch;
      profile.duration = 64.0;
      profile.loss_rate = 0.02;
      (void)cluster.join(profile);
    };
    for (int m = 0; m < 32; ++m) join_one(0.0);
    (void)cluster.end_epoch();
    for (std::uint64_t epoch = 1; epoch <= 8; ++epoch) {
      join_one(static_cast<double>(epoch));
      join_one(static_cast<double>(epoch));
      cluster.leave(workload::make_member_id(epoch));
      (void)cluster.end_epoch();
    }

    join_one(9.0);  // staged work the promoted leader must regenerate
    cluster.kill_leader_mid_commit();
    const auto start = std::chrono::steady_clock::now();
    try {
      (void)cluster.end_epoch();
    } catch (const partition::ServerCrashed&) {
    }
    const auto failover = cluster.failover();
    const auto stop = std::chrono::steady_clock::now();
    if (!failover.pending.has_value())
      std::cout << "WARNING: no interrupted epoch recovered by failover\n";
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(stop - start).count();
    const auto pending_epoch =
        failover.pending.has_value() ? failover.pending->epoch : 0;
    table.add_row({scheme, fmt(static_cast<double>(config.standbys), 0),
                   fmt(static_cast<double>(micros), 0),
                   fmt(static_cast<double>(failover.term), 0),
                   fmt(static_cast<double>(pending_epoch), 0)});
    rows.push_back({scheme, config.standbys, micros, failover.term});
  }
  bench::print_with_csv(table, "Failover: leader kill to first commit on new leader");
  return rows;
}

void write_json(const std::string& path, const std::vector<CadenceRow>& cadences,
                const std::vector<FailoverRow>& failovers) {
  std::ostringstream run;
  run << "    {\n      \"git_sha\": \"" << bench::git_sha() << "\",\n      \"cpu\": \""
      << bench::cpu_tag()
      << "\",\n      \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n      \"metric_units\": {\"recovery_us\": \"us\", \"failover_us\": "
         "\"us\", \"journal_bytes\": \"B\"},\n      \"checkpoint_cadence\": [\n";
  for (std::size_t i = 0; i < cadences.size(); ++i) {
    const auto& r = cadences[i];
    run << "        {\"checkpoint_every\": " << r.cadence
        << ", \"journal_bytes\": " << r.journal_bytes
        << ", \"replay_ops\": " << r.replay_ops
        << ", \"recovery_us\": " << r.recovery_us << "}"
        << (i + 1 < cadences.size() ? ",\n" : "\n");
  }
  run << "      ],\n      \"failover\": [\n";
  for (std::size_t i = 0; i < failovers.size(); ++i) {
    const auto& r = failovers[i];
    run << "        {\"scheme\": \"" << r.scheme << "\", \"standbys\": " << r.standbys
        << ", \"failover_us\": " << r.failover_us << ", \"term\": " << r.term << "}"
        << (i + 1 < failovers.size() ? ",\n" : "\n");
  }
  run << "      ]\n    }";
  bench::append_json_run(path, "recovery", run.str());
}

void resync_vs_rekey() {
  Table table({"drop rate", "resyncs", "unicast keys total", "unicast keys/resync",
               "multicast keys/epoch", "stragglers evicted"});
  for (const double drop : {0.05, 0.15, 0.30}) {
    auto config = base_config(faultsim::ServerKind::kOneKeyTree);
    config.faults.message_drop = drop;
    const auto result = faultsim::run_harness(config);
    const double per_resync =
        result.resyncs == 0 ? 0.0
                            : static_cast<double>(result.resync_key_transmissions) /
                                  static_cast<double>(result.resyncs);
    table.add_row({fmt(drop, 2), fmt(static_cast<double>(result.resyncs), 0),
                   fmt(static_cast<double>(result.resync_key_transmissions), 0),
                   fmt(per_resync, 1),
                   fmt(static_cast<double>(result.multicast_key_transmissions) /
                           static_cast<double>(config.epochs),
                       1),
                   fmt(static_cast<double>(result.stragglers_evicted), 0)});
  }
  bench::print_with_csv(table, "Unicast resync cost vs message-drop rate");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gk;
  std::string json_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_recovery [--json PATH]\n";
      return 2;
    }
  }
  bench::banner("Recovery — durability and resync costs under fault injection",
                "write-ahead journal, crash-every-epoch recovery, catch-up bundles, "
                "standby failover");
  crash_transparency();
  const auto cadences = checkpoint_cadence();
  resync_vs_rekey();
  const auto failovers = failover_time();
  write_json(json_path, cadences, failovers);
  std::cout << "Finding: journal recovery is wire-free — the crashed server\n"
               "multicasts byte-identical rekey messages after replay, so members\n"
               "cannot tell a recovered epoch from a clean one. Replay latency is\n"
               "bounded by checkpoint cadence, not group size; failover adds only\n"
               "election plus the pending-epoch regeneration the standby already\n"
               "pre-paid by committing eagerly at COMMIT_BEGIN; and per-member\n"
               "resync bundles stay O(tree depth) keys while the group-wide rekey\n"
               "the resync avoids grows with churn volume.\n";
  return 0;
}
