// Reproduces Fig. 6: "Impact of Group Loss Heterogeneity".
// N=65536, L=256, d=4, ph=20%, pl=2%; alpha (fraction of high-loss
// receivers) swept 0..1. Series: one key tree, two random key trees, two
// loss-homogenized key trees — all under the WKA-BKR bandwidth model of
// Appendix B — plus an end-to-end simulation with the real WKA-BKR
// transport over a lossy channel at N=4096.

#include <iostream>

#include "analytic/wka_bkr_model.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/transport_sim.h"

namespace {

constexpr double kLowLoss = 0.02;
constexpr double kHighLoss = 0.20;

double one_tree_cost(double n, double l, double alpha) {
  gk::analytic::WkaBkrParams p;
  p.members = n;
  p.departures = l;
  p.losses = {{kLowLoss, 1.0 - alpha}, {kHighLoss, alpha}};
  return gk::analytic::wka_bkr_cost(p);
}

double two_random_cost(double n, double l, double alpha) {
  gk::analytic::WkaBkrParams half;
  half.members = n / 2.0;
  half.departures = l / 2.0;
  half.losses = {{kLowLoss, 1.0 - alpha}, {kHighLoss, alpha}};
  return gk::analytic::wka_bkr_forest_cost({half, half});
}

double two_homogenized_cost(double n, double l, double alpha) {
  std::vector<gk::analytic::WkaBkrParams> trees;
  if (alpha < 1.0) {
    gk::analytic::WkaBkrParams low;
    low.members = (1.0 - alpha) * n;
    low.departures = (1.0 - alpha) * l;
    low.losses = {{kLowLoss, 1.0}};
    trees.push_back(low);
  }
  if (alpha > 0.0) {
    gk::analytic::WkaBkrParams high;
    high.members = alpha * n;
    high.departures = alpha * l;
    high.losses = {{kHighLoss, 1.0}};
    trees.push_back(high);
  }
  return gk::analytic::wka_bkr_forest_cost(trees);
}

}  // namespace

int main() {
  using namespace gk;
  bench::banner("Figure 6 — impact of group loss heterogeneity",
                "N=65536, L=256, d=4, ph=20%, pl=2%; alpha swept 0..1 (WKA-BKR)");

  Table table({"alpha", "One-keytree", "Two-random", "Two-loss-homogenized",
               "homog gain %"});
  double peak_gain = 0.0;
  double peak_alpha = 0.0;
  for (int i = 0; i <= 20; ++i) {
    const double alpha = static_cast<double>(i) / 20.0;
    const double one = one_tree_cost(65536.0, 256.0, alpha);
    const double rnd = two_random_cost(65536.0, 256.0, alpha);
    const double homog = two_homogenized_cost(65536.0, 256.0, alpha);
    const double gain = bench::gain_pct(one, homog);
    if (gain > peak_gain) {
      peak_gain = gain;
      peak_alpha = alpha;
    }
    table.add_row({alpha, one, rnd, homog, gain}, 2);
  }
  bench::print_with_csv(table, "Fig. 6 (analytic): rekeying cost vs loss heterogeneity");
  std::cout << "Measured peak loss-homogenization gain: " << fmt(peak_gain, 1)
            << "% at alpha = " << fmt(peak_alpha, 2)
            << "   (paper: up to 12.1% at alpha = 0.3)\n";

  // End-to-end simulation with the real WKA-BKR transport at N=4096.
  Table simtab({"alpha", "organization", "keys/epoch (sim)", "rounds"});
  for (const double alpha : {0.1, 0.3, 0.5}) {
    for (const auto org : {sim::TransportSimConfig::Organization::kOneTree,
                           sim::TransportSimConfig::Organization::kRandomSplit,
                           sim::TransportSimConfig::Organization::kLossHomogenized}) {
      sim::TransportSimConfig config;
      config.organization = org;
      config.group_size = 4096;
      config.departures_per_epoch = 16;
      config.high_fraction = alpha;
      config.epochs = 10;
      config.warmup_epochs = 2;
      config.seed = 4242;
      const auto result = sim::run_transport_sim(config);
      const char* name = org == sim::TransportSimConfig::Organization::kOneTree
                             ? "one-tree"
                             : (org == sim::TransportSimConfig::Organization::kRandomSplit
                                    ? "two-random"
                                    : "two-loss-homogenized");
      simtab.add_row({fmt(alpha, 1), name, fmt(result.keys_per_epoch.mean(), 1),
                      fmt(result.rounds_per_epoch.mean(), 1)});
    }
  }
  bench::print_with_csv(simtab, "Fig. 6 cross-validation (real transport, N=4096)");
  return 0;
}
