// Rekey delivery latency — the soft real-time requirement of Section 2.2
// ("the transport of a rekey message be finished with high probability
// before the start of the next rekey interval"). Proactive redundancy is
// how the protocols buy latency: WKA's weights and FEC's rho spend
// bandwidth in round one to pull the completion-round distribution in.
// This bench measures per-receiver completion rounds for each protocol and
// the FEC proactivity sweep.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "crypto/keywrap.h"
#include "transport/fec.h"
#include "transport/multisend.h"
#include "transport/session.h"
#include "transport/wka_bkr.h"

namespace {

using namespace gk;

std::vector<crypto::WrappedKey> make_payload(std::size_t count, Rng& rng) {
  const auto kek = crypto::Key128::random(rng);
  std::vector<crypto::WrappedKey> payload;
  for (std::size_t i = 0; i < count; ++i)
    payload.push_back(crypto::wrap_key(kek, crypto::make_key_id(i + 1), 0,
                                       crypto::Key128::random(rng),
                                       crypto::make_key_id(1000 + i), 1, rng));
  return payload;
}

std::vector<transport::SessionReceiver> make_receivers(std::size_t count,
                                                       std::size_t payload,
                                                       Rng& rng) {
  // Two-point losses as in Section 4: 25% at 20%, the rest at 2%.
  std::vector<transport::SessionReceiver> receivers;
  for (std::size_t r = 0; r < count; ++r) {
    std::vector<std::uint32_t> interest;
    while (interest.size() < 8) {
      const auto w = static_cast<std::uint32_t>(rng.uniform_u64(payload));
      if (std::find(interest.begin(), interest.end(), w) == interest.end())
        interest.push_back(w);
    }
    std::sort(interest.begin(), interest.end());
    const double loss = rng.bernoulli(0.25) ? 0.20 : 0.02;
    receivers.emplace_back(
        netsim::Receiver(workload::make_member_id(r), loss, rng.fork()),
        std::move(interest));
  }
  return receivers;
}

struct LatencyRow {
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double keys = 0.0;
};

LatencyRow run(transport::RekeyTransport& protocol, std::uint64_t seed) {
  Rng rng(seed);
  const auto payload = make_payload(512, rng);
  auto receivers = make_receivers(2048, payload.size(), rng);
  const auto report = protocol.deliver(payload, receivers);

  std::vector<double> rounds;
  rounds.reserve(receivers.size());
  for (const auto& r : receivers)
    rounds.push_back(static_cast<double>(std::max<std::size_t>(r.completion_round, 1)));
  std::sort(rounds.begin(), rounds.end());

  LatencyRow row;
  RunningStats stats;
  for (const double v : rounds) stats.add(v);
  row.mean = stats.mean();
  row.p50 = rounds[rounds.size() / 2];
  row.p99 = rounds[rounds.size() * 99 / 100];
  row.max = rounds.back();
  row.keys = static_cast<double>(report.key_transmissions);
  return row;
}

}  // namespace

int main() {
  bench::banner("Delivery latency — completion rounds per receiver",
                "512-key payload, 2048 receivers (25% at 20% loss, 75% at 2%)");

  Table table({"protocol", "mean", "p50", "p99", "max", "key transmissions"});
  auto add = [&table](const char* name, const LatencyRow& row) {
    table.add_row({name, fmt(row.mean, 2), fmt(row.p50, 0), fmt(row.p99, 0),
                   fmt(row.max, 0), fmt(row.keys, 0)});
  };

  {
    transport::WkaBkrTransport weighted({});
    add("WKA-BKR (weighted)", run(weighted, 42));
  }
  {
    transport::WkaBkrTransport::Config config;
    config.weighted = false;
    transport::WkaBkrTransport unweighted(config);
    add("BKR only (no weights)", run(unweighted, 42));
  }
  {
    transport::MultiSendTransport multisend({});
    add("multi-send", run(multisend, 42));
  }
  for (const double rho : {1.0, 1.25, 1.5}) {
    transport::ProactiveFecTransport::Config config;
    config.proactivity = rho;
    transport::ProactiveFecTransport fec(config);
    add(rho == 1.0 ? "FEC rho=1.00" : (rho == 1.25 ? "FEC rho=1.25" : "FEC rho=1.50"),
        run(fec, 42));
  }
  bench::print_with_csv(table, "Completion-round distribution by protocol");

  std::cout << "Proactive redundancy (WKA weights, FEC parity) trades round-one\n"
               "bandwidth for tail latency: watch p99/max fall as rho grows, and\n"
               "weighted WKA beat plain BKR at similar total cost.\n";
  return 0;
}
