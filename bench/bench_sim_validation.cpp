// Model-vs-implementation validation sweep (not in the paper — the paper's
// evaluation is analytic only). For each scheme and several operating
// points, runs the full discrete-event implementation (real key trees, real
// wrapped keys, batched migrations) and prints the measured per-epoch cost
// next to the Section 3.3 analytic prediction, plus WKA-BKR transport
// measurements against the Appendix B model.

#include <iostream>

#include "analytic/two_partition_model.h"
#include "analytic/wka_bkr_model.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/partition_sim.h"
#include "sim/transport_sim.h"

int main() {
  using namespace gk;
  bench::banner("Validation — analytic model vs full implementation",
                "Every scheme simulated end-to-end; costs in encrypted keys/epoch");

  Table table({"N", "alpha", "K", "scheme", "model", "sim", "sim/model"});
  for (const double n : {1024.0, 4096.0}) {
    for (const double alpha : {0.5, 0.8}) {
      for (const auto scheme :
           {partition::SchemeKind::kOneKeyTree, partition::SchemeKind::kTt,
            partition::SchemeKind::kQt, partition::SchemeKind::kPt}) {
        const unsigned k = scheme == partition::SchemeKind::kOneKeyTree ? 0 : 10;
        sim::PartitionSimConfig config;
        config.scheme = scheme;
        config.group_size = static_cast<std::uint64_t>(n);
        config.s_period_epochs = k;
        config.short_fraction = alpha;
        config.epochs = 20;
        config.warmup_epochs = k + 6;
        config.seed = 90210;
        const auto result = sim::run_partition_sim(config);

        analytic::TwoPartitionParams mp;
        mp.group_size = n;
        mp.short_fraction = alpha;
        mp.s_period_epochs = k;
        double model = 0.0;
        switch (scheme) {
          case partition::SchemeKind::kOneKeyTree:
            model = analytic::one_keytree_cost(mp);
            break;
          case partition::SchemeKind::kTt: model = analytic::tt_cost(mp); break;
          case partition::SchemeKind::kQt: model = analytic::qt_cost(mp); break;
          case partition::SchemeKind::kPt: model = analytic::pt_cost(mp); break;
        }
        const double sim_cost = result.cost_per_epoch.mean();
        table.add_row({fmt(n, 0), fmt(alpha, 1), std::to_string(k),
                       partition::to_string(scheme), fmt(model, 1), fmt(sim_cost, 1),
                       fmt(model > 0 ? sim_cost / model : 0.0, 3)});
      }
    }
  }
  bench::print_with_csv(table, "Two-partition schemes: analytic vs discrete-event");

  // Full paper scale: N = 65536 at the Table 1 defaults, run for real.
  Table full({"scheme", "model keys/epoch", "sim keys/epoch", "sim/model"});
  for (const auto scheme :
       {partition::SchemeKind::kOneKeyTree, partition::SchemeKind::kTt,
        partition::SchemeKind::kQt, partition::SchemeKind::kPt}) {
    const unsigned k = scheme == partition::SchemeKind::kOneKeyTree ? 0 : 10;
    sim::PartitionSimConfig config;
    config.scheme = scheme;
    config.group_size = 65536;
    config.s_period_epochs = k;
    config.epochs = 10;
    config.warmup_epochs = k + 2;
    config.seed = 65536;
    const auto result = sim::run_partition_sim(config);

    analytic::TwoPartitionParams mp;  // Table 1 defaults
    mp.s_period_epochs = k;
    double model = 0.0;
    switch (scheme) {
      case partition::SchemeKind::kOneKeyTree:
        model = analytic::one_keytree_cost(mp);
        break;
      case partition::SchemeKind::kTt: model = analytic::tt_cost(mp); break;
      case partition::SchemeKind::kQt: model = analytic::qt_cost(mp); break;
      case partition::SchemeKind::kPt: model = analytic::pt_cost(mp); break;
    }
    full.add_row({partition::to_string(scheme), fmt(model, 0),
                  fmt(result.cost_per_epoch.mean(), 0),
                  fmt(result.cost_per_epoch.mean() / model, 3)});
  }
  bench::print_with_csv(full,
                        "Paper scale (N=65536, Table 1 defaults): real trees, real keys");

  Table ttab({"alpha", "organization", "model E[V]", "sim keys/epoch", "sim/model"});
  for (const double alpha : {0.1, 0.3}) {
    // One tree, N=4096, L=16 per epoch.
    analytic::WkaBkrParams one;
    one.members = 4096.0;
    one.departures = 16.0;
    one.losses = {{0.02, 1.0 - alpha}, {0.20, alpha}};
    const double model_one = analytic::wka_bkr_cost(one);

    sim::TransportSimConfig config;
    config.organization = sim::TransportSimConfig::Organization::kOneTree;
    config.group_size = 4096;
    config.departures_per_epoch = 16;
    config.high_fraction = alpha;
    config.epochs = 10;
    config.warmup_epochs = 2;
    config.seed = 5150;
    const auto result = sim::run_transport_sim(config);
    ttab.add_row({fmt(alpha, 1), "one-tree", fmt(model_one, 1),
                  fmt(result.keys_per_epoch.mean(), 1),
                  fmt(result.keys_per_epoch.mean() / model_one, 3)});
  }
  bench::print_with_csv(ttab, "WKA-BKR transport: Appendix B model vs real protocol");

  std::cout << "Interpretation: sim/model near 1.0 validates both the implementation\n"
               "and the paper's analysis; sim runs slightly above the model because\n"
               "real trees are imperfectly balanced and joins add chain wraps the\n"
               "leave-only Ne(N,L) formula ignores.\n";
  return 0;
}
