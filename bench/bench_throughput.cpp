// Rekey-engine throughput: epochs/sec, wraps/sec, and commit-latency
// percentiles for all four schemes at production group sizes, across
// thread counts, against a "seed-crypto" baseline that disables the
// per-node KEK-expansion cache (reproducing the seed's
// one-expansion-per-wrap cost on the sequential path).
//
// Four modes per configuration:
//   seed-crypto  no KEK cache, scalar kernels, 1 thread (the seed's cost)
//   engine       KEK cache + parallel emission, kernels pinned to scalar
//   simd         same, kernels at the native dispatch level (GK_CPU caps it)
//   sharded      ShardedRekeyCore (--shards S): S per-shard arenas committed
//                shard-parallel, native kernels
// Pinning "engine" to scalar isolates the vector-kernel gain: simd/engine
// at equal thread count is the kernel speedup alone; sharded/simd at equal
// threads is the shard-parallelism gain. Every row carries speedup_vs_1t
// (wraps/s relative to the same configuration at 1 thread) and the JSON
// run record ends with a "scaling" block grouping those curves, so scaling
// regressions are visible per-PR without cross-row arithmetic.
//
// Unlike the figure benches (paper bandwidth metrics), this measures the
// *server CPU* hot path the arena rebuild targets. Results are printed as
// a table and *appended* as one run record to machine-readable JSON
// (BENCH_throughput.json) so successive commits accumulate a perf
// trajectory; every row carries the scheme name, git SHA, thread count,
// and crypto dispatch level.
//
// Usage:
//   bench_throughput [--smoke] [--json PATH] [--epochs E] [--warmup W]
//                    [--sizes N,N,...] [--threads T,T,...] [--shards S,S,...]
//                    [--scaling-floor X]
//
//   --smoke   CI mode: one small group size, two thread counts, few epochs.
//   --scaling-floor X   exit nonzero unless some sharded configuration
//                       reaches X times its own 1-thread wraps/s at the
//                       highest thread count (CI scaling-efficiency gate).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "crypto/simd/cpu.h"
#include "engine/core_server.h"
#include "partition/factory.h"
#include "partition/server.h"
#include "workload/member.h"

namespace {

using namespace gk;
using Clock = std::chrono::steady_clock;

struct Config {
  bool smoke = false;
  std::string json_path = "BENCH_throughput.json";
  std::size_t epochs = 0;  // 0 = per-mode default
  std::size_t warmup = 2;  // untimed epochs before each measured mode
  std::vector<std::size_t> sizes;    // empty = per-mode default
  std::vector<unsigned> threads;     // empty = per-mode default
  std::vector<unsigned> shards;      // empty = per-mode default
  double scaling_floor = 0.0;        // 0 = gate disabled
};

struct Row {
  std::string scheme;
  std::string git_sha;
  std::size_t members = 0;
  std::string mode;   // "seed-crypto", "engine", "simd", or "sharded"
  std::string cpu;    // crypto dispatch level the mode ran at
  unsigned shards = 0;  // shard count for "sharded" rows; 0 otherwise
  unsigned threads = 1;
  std::size_t epochs = 0;
  std::size_t batch = 0;
  std::uint64_t total_wraps = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  unsigned tree_height = 0;
  double mean_leaf_depth = 0.0;

  [[nodiscard]] double epochs_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(epochs) / seconds : 0.0;
  }
  [[nodiscard]] double wraps_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(total_wraps) / seconds : 0.0;
  }
};

/// wraps/s of `row` relative to the 1-thread row of the same configuration
/// (scheme, size, mode, shard count). 1.0 for 1-thread rows; 0.0 when the
/// baseline is missing (e.g. --threads without 1).
double speedup_vs_1t(const std::vector<Row>& rows, const Row& row) {
  if (row.threads == 1) return row.wraps_per_sec() > 0.0 ? 1.0 : 0.0;
  for (const Row& base : rows)
    if (base.threads == 1 && base.scheme == row.scheme && base.members == row.members &&
        base.mode == row.mode && base.shards == row.shards &&
        base.wraps_per_sec() > 0.0)
      return row.wraps_per_sec() / base.wraps_per_sec();
  return 0.0;
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Steady-state churn driver: every epoch replaces `batch` random members
/// with fresh arrivals (a join+leave pair keeps the group size pinned),
/// then times end_epoch(). Membership classes are mixed so the PT oracle
/// and the QT/TT migration machinery all stay exercised.
class ChurnDriver {
 public:
  ChurnDriver(partition::RekeyServer& server, std::size_t members, Rng rng)
      : server_(server), rng_(rng) {
    server_.reserve(members);
    present_.reserve(members);
    for (std::size_t i = 0; i < members; ++i) {
      (void)server_.join(make_profile());
      present_.push_back(next_id_ - 1);
    }
    (void)server_.end_epoch();
  }

  /// Run `epochs` epochs of `batch` join+leave pairs each. Appends one
  /// commit latency (ms) per epoch and returns (total wraps, seconds).
  std::pair<std::uint64_t, double> run(std::size_t epochs, std::size_t batch,
                                       std::vector<double>& latencies_ms) {
    std::uint64_t wraps = 0;
    double seconds = 0.0;
    for (std::size_t e = 0; e < epochs; ++e) {
      for (std::size_t b = 0; b < batch; ++b) {
        const auto victim = rng_.uniform_u64(present_.size());
        server_.leave(workload::make_member_id(present_[victim]));
        (void)server_.join(make_profile());
        present_[victim] = next_id_ - 1;
      }
      const auto start = Clock::now();
      const auto output = server_.end_epoch();
      const std::chrono::duration<double> elapsed = Clock::now() - start;
      wraps += output.message.cost();
      seconds += elapsed.count();
      latencies_ms.push_back(elapsed.count() * 1e3);
    }
    return {wraps, seconds};
  }

  /// Untimed epochs, for cache/branch-predictor warm-up after a mode
  /// switch. More than one matters at smoke sizes, where a single epoch is
  /// too short to settle the thread pool and the freshly-switched kernels.
  void warm_epochs(std::size_t count, std::size_t batch) {
    std::vector<double> sink;
    if (count > 0) (void)run(count, batch, sink);
  }

 private:
  workload::MemberProfile make_profile() {
    workload::MemberProfile profile;
    profile.id = workload::make_member_id(next_id_++);
    profile.member_class = rng_.bernoulli(0.7) ? workload::MemberClass::kShort
                                               : workload::MemberClass::kLong;
    profile.duration =
        profile.member_class == workload::MemberClass::kShort ? 60.0 : 3600.0;
    return profile;
  }

  partition::RekeyServer& server_;
  Rng rng_;
  std::vector<std::uint64_t> present_;
  std::uint64_t next_id_ = 0;
};

void fill_tree_shape(const partition::RekeyServer& server, Row& row) {
  // tree_stats() is a RekeyServer virtual (merged across every partition,
  // loss bin, and shard), so every mode of every scheme reports the real
  // substrate shape — no downcast to a specific server facade that would
  // silently zero the columns for servers behind a different one.
  const auto stats = server.tree_stats();
  row.tree_height = stats.height;
  row.mean_leaf_depth = stats.mean_leaf_depth;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const Config& config, std::size_t epochs) {
  // One self-contained run record, appended to the "runs" array so the
  // file accumulates a perf trajectory across commits.
  std::ostringstream run;
  run << "    {\n      \"git_sha\": \""
      << (rows.empty() ? bench::git_sha() : rows.front().git_sha)
      << "\",\n      \"smoke\": " << (config.smoke ? "true" : "false")
      << ",\n      \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n      \"cpu\": \"" << bench::cpu_tag() << "\",\n      \"epochs\": " << epochs
      << ",\n      \"warmup_epochs\": " << config.warmup
      << ",\n      \"metric_units\": {\"epochs_per_sec\": \"1/s\", \"wraps_per_sec\": "
         "\"1/s\", \"p50_ms\": \"ms\", \"p99_ms\": \"ms\"},\n      \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    run << "        {\"scheme\": \"" << r.scheme << "\", \"git_sha\": \"" << r.git_sha
        << "\", \"members\": " << r.members << ", \"mode\": \"" << r.mode
        << "\", \"cpu\": \"" << r.cpu << "\", \"shards\": " << r.shards
        << ", \"threads\": " << r.threads << ", \"epochs\": " << r.epochs
        << ", \"batch\": " << r.batch << ", \"total_wraps\": " << r.total_wraps
        << ", \"seconds\": " << r.seconds
        << ", \"epochs_per_sec\": " << r.epochs_per_sec()
        << ", \"wraps_per_sec\": " << r.wraps_per_sec() << ", \"p50_ms\": " << r.p50_ms
        << ", \"p99_ms\": " << r.p99_ms << ", \"tree_height\": " << r.tree_height
        << ", \"mean_leaf_depth\": " << r.mean_leaf_depth
        << ", \"speedup_vs_1t\": " << speedup_vs_1t(rows, r) << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  run << "      ],\n      \"scaling\": [\n";
  // One thread-scaling curve per (scheme, size, mode, shards) group that
  // was measured at more than one thread count, in first-seen row order.
  std::vector<std::size_t> group_heads;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    bool seen = false;
    std::size_t group_size = 0;
    for (std::size_t j = 0; j < rows.size(); ++j) {
      const Row& o = rows[j];
      if (o.scheme != r.scheme || o.members != r.members || o.mode != r.mode ||
          o.shards != r.shards)
        continue;
      ++group_size;
      if (j < i) seen = true;
    }
    if (!seen && group_size > 1) group_heads.push_back(i);
  }
  for (std::size_t g = 0; g < group_heads.size(); ++g) {
    const Row& head = rows[group_heads[g]];
    run << "        {\"scheme\": \"" << head.scheme << "\", \"members\": " << head.members
        << ", \"mode\": \"" << head.mode << "\", \"shards\": " << head.shards
        << ", \"threads\": [";
    std::string wps;
    std::string speedups;
    bool first = true;
    for (const Row& r : rows) {
      if (r.scheme != head.scheme || r.members != head.members || r.mode != head.mode ||
          r.shards != head.shards)
        continue;
      if (!first) {
        run << ", ";
        wps += ", ";
        speedups += ", ";
      }
      first = false;
      run << r.threads;
      wps += fmt(r.wraps_per_sec(), 0);
      speedups += fmt(speedup_vs_1t(rows, r), 3);
    }
    run << "], \"wraps_per_sec\": [" << wps << "], \"speedup_vs_1t\": [" << speedups
        << "]}" << (g + 1 < group_heads.size() ? ",\n" : "\n");
  }
  run << "      ]\n    }";
  bench::append_json_run(path, "throughput", run.str());
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      config.epochs = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      config.warmup = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (std::strcmp(argv[i], "--sizes") == 0 && i + 1 < argc) {
      std::stringstream list(argv[++i]);
      for (std::string item; std::getline(list, item, ',');)
        config.sizes.push_back(static_cast<std::size_t>(std::stoull(item)));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      std::stringstream list(argv[++i]);
      for (std::string item; std::getline(list, item, ',');)
        config.threads.push_back(static_cast<unsigned>(std::stoul(item)));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      std::stringstream list(argv[++i]);
      for (std::string item; std::getline(list, item, ',');)
        config.shards.push_back(static_cast<unsigned>(std::stoul(item)));
    } else if (std::strcmp(argv[i], "--scaling-floor") == 0 && i + 1 < argc) {
      config.scaling_floor = std::stod(argv[++i]);
    } else {
      std::cerr << "usage: bench_throughput [--smoke] [--json PATH] [--epochs E] "
                   "[--warmup W] [--sizes N,N,...] [--threads T,T,...] "
                   "[--shards S,S,...] [--scaling-floor X]\n";
      return 2;
    }
  }

  bench::banner("bench_throughput",
                "rekey-engine commit throughput: arena trees, cached KEK expansions, "
                "deterministic parallel wrap emission");
  std::cout << "metric override: server-side commit CPU (epochs/sec, wraps/sec, latency)\n";

  const std::vector<std::size_t> sizes =
      !config.sizes.empty() ? config.sizes
      : config.smoke        ? std::vector<std::size_t>{4096}
                            : std::vector<std::size_t>{65536, 262144, 1048576};
  const std::vector<unsigned> thread_counts =
      !config.threads.empty() ? config.threads
      : config.smoke          ? std::vector<unsigned>{1, 2}
                              : std::vector<unsigned>{1, 2, 4, 8};
  const std::size_t epochs = config.epochs ? config.epochs : (config.smoke ? 12 : 16);
  const std::vector<unsigned> shard_counts =
      !config.shards.empty() ? config.shards
      : config.smoke         ? std::vector<unsigned>{2}
                             : std::vector<unsigned>{8};

  // The env-respecting dispatch level: GK_CPU=scalar turns the simd rows
  // into a second scalar measurement, which CI diffs against the native run.
  const crypto::CpuLevel native_level = crypto::cpu_level();

  const std::vector<std::string> schemes = {"one-tree", "qt", "tt", "pt"};
  const std::string sha = bench::git_sha();

  // Pools are shared across configurations: spawn each size once.
  std::vector<std::unique_ptr<common::ThreadPool>> pools;
  for (const unsigned t : thread_counts)
    pools.push_back(t > 1 ? std::make_unique<common::ThreadPool>(t) : nullptr);

  std::vector<Row> rows;
  Table table({"scheme", "members", "mode", "cpu", "shards", "threads", "epochs/s",
               "wraps/s", "p50 ms", "p99 ms", "x1t"});

  for (const std::size_t members : sizes) {
    // Batch scales with the group so dirty subtrees stay proportional.
    const std::size_t batch = std::max<std::size_t>(16, members / 1024);
    for (const auto& scheme : schemes) {
      partition::SchemeConfig scheme_config;
      scheme_config.degree = 4;
      scheme_config.s_period_epochs = 8;

      const auto measure = [&](partition::RekeyServer& server, ChurnDriver& driver,
                               const std::string& mode, unsigned shard_count,
                               unsigned threads, common::ThreadPool* pool,
                               bool wrap_cache, crypto::CpuLevel level) {
        server.set_wrap_cache(wrap_cache);
        server.set_executor(pool);
        (void)crypto::force_cpu_level(level);
        driver.warm_epochs(config.warmup, batch);
        Row row;
        row.scheme = scheme;
        row.git_sha = sha;
        row.members = members;
        row.mode = mode;
        row.cpu = bench::cpu_tag();
        row.shards = shard_count;
        row.threads = threads;
        row.epochs = epochs;
        row.batch = batch;
        std::vector<double> latencies;
        std::tie(row.total_wraps, row.seconds) = driver.run(epochs, batch, latencies);
        row.p50_ms = percentile(latencies, 0.50);
        row.p99_ms = percentile(latencies, 0.99);
        fill_tree_shape(server, row);
        rows.push_back(row);
        table.add_row({row.scheme, std::to_string(members), mode, row.cpu,
                       shard_count > 0 ? std::to_string(shard_count) : "-",
                       std::to_string(threads), fmt(row.epochs_per_sec(), 1),
                       fmt(row.wraps_per_sec(), 0), fmt(row.p50_ms, 2),
                       fmt(row.p99_ms, 2), fmt(speedup_vs_1t(rows, rows.back()), 2)});
      };

      {
        // One bootstrap per (scheme, size); the unsharded modes run
        // back-to-back on the live server — steady-state churn keeps the
        // group size pinned, so later modes see the same population
        // statistics.
        auto server =
            partition::make_server(scheme, scheme_config, Rng(0x5eed ^ members));
        ChurnDriver driver(*server, members, Rng(0xc0ffee ^ members));
        // Settle the migration clock before the first measurement: with few
        // epochs (smoke runs), QT/TT would otherwise measure — and report
        // the tree shape of — a pre-steady-state group whose L-tree hasn't
        // received a single migrant yet (the "tree_height: 0" rows).
        driver.warm_epochs(scheme_config.s_period_epochs + 1, batch);
        measure(*server, driver, "seed-crypto", 0, 1, nullptr, /*wrap_cache=*/false,
                crypto::CpuLevel::kScalar);
        for (std::size_t t = 0; t < thread_counts.size(); ++t)
          measure(*server, driver, "engine", 0, thread_counts[t], pools[t].get(),
                  /*wrap_cache=*/true, crypto::CpuLevel::kScalar);
        for (std::size_t t = 0; t < thread_counts.size(); ++t)
          measure(*server, driver, "simd", 0, thread_counts[t], pools[t].get(),
                  /*wrap_cache=*/true, native_level);
      }

      // Sharded mode: a fresh ShardedRekeyCore per shard count (shard
      // topology is structural), swept over the same thread counts at the
      // native kernel level.
      for (const unsigned shard_count : shard_counts) {
        auto sharded = partition::make_sharded_server(
            scheme, scheme_config, shard_count,
            Rng(0x5eed ^ members ^ (std::uint64_t{shard_count} << 32)));
        ChurnDriver driver(*sharded, members, Rng(0xc0ffee ^ members));
        driver.warm_epochs(scheme_config.s_period_epochs + 1, batch);
        for (std::size_t t = 0; t < thread_counts.size(); ++t)
          measure(*sharded, driver, "sharded", shard_count, thread_counts[t],
                  pools[t].get(), /*wrap_cache=*/true, native_level);
      }
    }
  }
  (void)crypto::force_cpu_level(native_level);

  bench::print_with_csv(table, "rekey-engine throughput");

  // Headline speedups at the largest size, one-keytree scheme.
  const auto find_sharded = [&](unsigned shards, unsigned threads) -> const Row* {
    for (const Row& r : rows)
      if (r.scheme == "one-tree" && r.members == sizes.back() && r.mode == "sharded" &&
          r.shards == shards && r.threads == threads)
        return &r;
    return nullptr;
  };
  const auto find = [&](const std::string& mode, unsigned threads) -> const Row* {
    for (const Row& r : rows)
      if (r.scheme == "one-tree" && r.members == sizes.back() && r.mode == mode &&
          r.threads == threads)
        return &r;
    return nullptr;
  };
  const Row* seed = find("seed-crypto", 1);
  if (seed != nullptr && seed->wraps_per_sec() > 0.0) {
    for (const unsigned t : thread_counts)
      if (const Row* engine = find("engine", t))
        std::cout << "one-tree N=" << sizes.back() << ": engine x" << t
                  << " threads = "
                  << fmt(engine->wraps_per_sec() / seed->wraps_per_sec(), 2)
                  << "x seed-crypto wraps/sec\n";
  }
  // The kernel gain in isolation: simd vs scalar-pinned engine, same threads.
  for (const unsigned t : thread_counts) {
    const Row* engine = find("engine", t);
    const Row* simd = find("simd", t);
    if (engine != nullptr && simd != nullptr && engine->wraps_per_sec() > 0.0)
      std::cout << "one-tree N=" << sizes.back() << ": simd (" << simd->cpu << ") x"
                << t << " threads = "
                << fmt(simd->wraps_per_sec() / engine->wraps_per_sec(), 2)
                << "x scalar engine wraps/sec\n";
  }
  // Shard-parallel thread scaling: each sharded configuration against its
  // own 1-thread run.
  for (const unsigned shard_count : shard_counts)
    for (const unsigned t : thread_counts)
      if (const Row* sharded = find_sharded(shard_count, t))
        std::cout << "one-tree N=" << sizes.back() << ": sharded S=" << shard_count
                  << " x" << t << " threads = " << fmt(speedup_vs_1t(rows, *sharded), 2)
                  << "x its 1-thread wraps/sec\n";

  write_json(config.json_path, rows, config, epochs);

  // CI scaling-efficiency gate: the machine must demonstrate the floor with
  // at least one sharded configuration (best group counts — per-scheme
  // wobble on shared runners must not flake the job; a broken parallel
  // path fails every group and trips it).
  if (config.scaling_floor > 0.0) {
    double best = 0.0;
    std::string best_desc = "none";
    for (const Row& r : rows) {
      if (r.mode != "sharded" || r.threads == 1) continue;
      const double speedup = speedup_vs_1t(rows, r);
      if (speedup > best) {
        best = speedup;
        best_desc = r.scheme + " N=" + std::to_string(r.members) + " S=" +
                    std::to_string(r.shards) + " x" + std::to_string(r.threads);
      }
    }
    std::cout << "scaling floor " << fmt(config.scaling_floor, 2) << "x: best sharded "
              << best_desc << " = " << fmt(best, 2) << "x\n";
    if (best < config.scaling_floor) {
      std::cerr << "FAIL: no sharded configuration reached the scaling floor\n";
      return 1;
    }
  }
  return 0;
}
