// Extension study (beyond the paper's two trees): how many loss bins are
// worth maintaining? The paper homogenizes into exactly two trees; with a
// richer receiver population the same mechanism generalizes to B bins.
// This bench evaluates B = 1, 2, 4 analytically on a four-point loss
// population and cross-validates with the real WKA-BKR transport.

#include <iostream>
#include <vector>

#include "analytic/wka_bkr_model.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/transport_sim.h"

namespace {

using namespace gk;

// Receiver population: mostly clean links, a long tail of lossy ones.
const std::vector<std::pair<double, double>> kPopulation = {
    {0.01, 0.55}, {0.05, 0.25}, {0.12, 0.15}, {0.30, 0.05}};

constexpr double kN = 65536.0;
constexpr double kL = 256.0;

double forest_cost(const std::vector<double>& bins) {
  // Assign each population point to its bin, then cost each tree.
  std::vector<analytic::WkaBkrParams> trees(bins.size());
  std::vector<double> tree_weight(bins.size(), 0.0);
  for (const auto& [rate, weight] : kPopulation) {
    std::size_t bin = bins.size() - 1;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (rate <= bins[b]) {
        bin = b;
        break;
      }
    }
    trees[bin].losses.push_back({rate, weight});
    tree_weight[bin] += weight;
  }
  std::vector<analytic::WkaBkrParams> active;
  for (std::size_t b = 0; b < trees.size(); ++b) {
    if (tree_weight[b] <= 0.0) continue;
    auto tree = trees[b];
    for (auto& cls : tree.losses) cls.fraction /= tree_weight[b];
    tree.members = tree_weight[b] * kN;
    tree.departures = tree_weight[b] * kL;
    tree.degree = 4;
    active.push_back(std::move(tree));
  }
  return analytic::wka_bkr_forest_cost(active);
}

}  // namespace

int main() {
  bench::banner("Extension — how many loss-homogenized bins?",
                "4-point loss population (1%/5%/12%/30%), N=65536, L=256, WKA-BKR");

  struct Case {
    const char* name;
    std::vector<double> bins;
  };
  const std::vector<Case> cases = {
      {"1 tree (baseline)", {1.0}},
      {"2 trees (paper)", {0.08, 1.0}},
      {"3 trees", {0.03, 0.08, 1.0}},
      {"4 trees (one per class)", {0.03, 0.08, 0.2, 1.0}},
  };

  Table table({"organization", "model cost (#keys)", "gain vs 1 tree %",
               "sim keys/epoch (N=4096)"});
  double baseline = 0.0;
  for (const auto& c : cases) {
    const double cost = forest_cost(c.bins);
    if (baseline == 0.0) baseline = cost;

    sim::TransportSimConfig config;
    config.organization = c.bins.size() == 1
                              ? sim::TransportSimConfig::Organization::kOneTree
                              : sim::TransportSimConfig::Organization::kLossHomogenized;
    config.custom_bins = c.bins;
    config.loss_points = kPopulation;
    config.group_size = 4096;
    config.departures_per_epoch = 16;
    config.epochs = 10;
    config.warmup_epochs = 2;
    config.seed = 60486;
    const auto sim_result = sim::run_transport_sim(config);

    table.add_row({c.name, fmt(cost, 1), fmt(bench::gain_pct(baseline, cost), 2),
                   fmt(sim_result.keys_per_epoch.mean(), 1)});
  }
  bench::print_with_csv(table, "Bins vs rekey bandwidth");

  std::cout << "Two bins capture most of the benefit; additional bins shave a\n"
               "little more off by isolating the worst tail, at the cost of more\n"
               "trees to manage and smaller batches per tree (diminishing returns).\n";
  return 0;
}
