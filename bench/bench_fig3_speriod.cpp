// Reproduces Fig. 3: "Impact of S-period on key server rekeying cost".
// Sweeps K = Ts/Tp from 0 to 20 at the Table 1 defaults and prints the
// per-epoch rekeying cost of the one-keytree baseline and the QT/TT/PT
// two-partition schemes (analytic model, equations 8-10), plus discrete-
// event simulation points at a reduced group size for cross-validation.

#include <iostream>

#include "analytic/two_partition_model.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/partition_sim.h"

int main() {
  using namespace gk;
  bench::banner("Figure 3 — impact of S-period",
                "N=65536, d=4, Tp=60s, Ms=3min, Ml=3h, alpha=0.8; K swept 0..20");

  Table table({"K", "One-keytree", "TT", "QT", "PT", "TT gain %", "QT gain %"});
  analytic::TwoPartitionParams p;
  const double base = analytic::one_keytree_cost(p);
  for (unsigned k = 0; k <= 20; ++k) {
    p.s_period_epochs = k;
    const double tt = analytic::tt_cost(p);
    const double qt = analytic::qt_cost(p);
    const double pt = analytic::pt_cost(p);
    table.add_row({static_cast<double>(k), base, tt, qt, pt, bench::gain_pct(base, tt),
                   bench::gain_pct(base, qt)},
                  1);
  }
  bench::print_with_csv(table, "Fig. 3 (analytic): rekeying cost vs K");

  std::cout << "Paper reference points: TT ~25% below one-keytree at K=10; "
               "QT between TT and baseline for large K; PT best (~40% gain).\n";

  // Discrete-event cross-check at N=4096 (full implementation, real trees).
  Table simtab({"K", "scheme", "sim keys/epoch", "model keys/epoch"});
  for (unsigned k : {0u, 5u, 10u}) {
    for (const auto scheme :
         {partition::SchemeKind::kOneKeyTree, partition::SchemeKind::kTt,
          partition::SchemeKind::kQt}) {
      sim::PartitionSimConfig config;
      config.scheme = scheme;
      config.group_size = 4096;
      config.s_period_epochs = k;
      config.epochs = 20;
      config.warmup_epochs = k + 6;
      config.seed = 2024;
      const auto result = sim::run_partition_sim(config);

      analytic::TwoPartitionParams mp;
      mp.group_size = 4096;
      mp.s_period_epochs = k;
      double model = 0.0;
      switch (scheme) {
        case partition::SchemeKind::kOneKeyTree:
          model = analytic::one_keytree_cost(mp);
          break;
        case partition::SchemeKind::kTt: model = analytic::tt_cost(mp); break;
        case partition::SchemeKind::kQt: model = analytic::qt_cost(mp); break;
        default: break;
      }
      simtab.add_row({std::to_string(k), partition::to_string(scheme),
                      fmt(result.cost_per_epoch.mean(), 1), fmt(model, 1)});
    }
  }
  bench::print_with_csv(simtab, "Fig. 3 cross-validation (simulation at N=4096)");
  return 0;
}
