#pragma once

#include <iostream>
#include <string>

#include "common/table.h"
#include "crypto/simd/cpu.h"

namespace gk::bench {

/// The crypto dispatch level currently in effect ("scalar", "sse2", "avx2"
/// — see crypto::cpu_level()). Every row appended to a BENCH_*.json carries
/// this tag so perf trajectories across commits stay comparable: a wraps/s
/// regression that coincides with a cpu change is a hardware or GK_CPU
/// difference, not a code regression.
[[nodiscard]] inline std::string cpu_tag() {
  return crypto::cpu_level_name(crypto::cpu_level());
}

/// Shared figure-bench preamble: every bench binary announces which paper
/// artifact it regenerates and with which conventions.
inline void banner(const std::string& experiment, const std::string& description) {
  std::cout << "==================================================================\n"
            << experiment << "\n"
            << description << "\n"
            << "metric: encrypted keys multicast by the key server per rekey epoch\n"
            << "==================================================================\n";
}

/// Percentage reduction of `value` relative to `baseline`.
[[nodiscard]] inline double gain_pct(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (1.0 - value / baseline);
}

inline void print_with_csv(const Table& table, const std::string& title) {
  table.print(std::cout, title);
  std::cout << "CSV:\n" << table.to_csv() << '\n';
}

}  // namespace gk::bench
