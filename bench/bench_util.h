#pragma once

#include <iostream>
#include <string>

#include "common/table.h"

namespace gk::bench {

/// Shared figure-bench preamble: every bench binary announces which paper
/// artifact it regenerates and with which conventions.
inline void banner(const std::string& experiment, const std::string& description) {
  std::cout << "==================================================================\n"
            << experiment << "\n"
            << description << "\n"
            << "metric: encrypted keys multicast by the key server per rekey epoch\n"
            << "==================================================================\n";
}

/// Percentage reduction of `value` relative to `baseline`.
[[nodiscard]] inline double gain_pct(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (1.0 - value / baseline);
}

inline void print_with_csv(const Table& table, const std::string& title) {
  table.print(std::cout, title);
  std::cout << "CSV:\n" << table.to_csv() << '\n';
}

}  // namespace gk::bench
