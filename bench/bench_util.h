#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.h"
#include "crypto/simd/cpu.h"

namespace gk::bench {

/// The crypto dispatch level currently in effect ("scalar", "sse2", "avx2"
/// — see crypto::cpu_level()). Every row appended to a BENCH_*.json carries
/// this tag so perf trajectories across commits stay comparable: a wraps/s
/// regression that coincides with a cpu change is a hardware or GK_CPU
/// difference, not a code regression.
[[nodiscard]] inline std::string cpu_tag() {
  return crypto::cpu_level_name(crypto::cpu_level());
}

/// Shared figure-bench preamble: every bench binary announces which paper
/// artifact it regenerates and with which conventions.
inline void banner(const std::string& experiment, const std::string& description) {
  std::cout << "==================================================================\n"
            << experiment << "\n"
            << description << "\n"
            << "metric: encrypted keys multicast by the key server per rekey epoch\n"
            << "==================================================================\n";
}

/// Percentage reduction of `value` relative to `baseline`.
[[nodiscard]] inline double gain_pct(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (1.0 - value / baseline);
}

inline void print_with_csv(const Table& table, const std::string& title) {
  table.print(std::cout, title);
  std::cout << "CSV:\n" << table.to_csv() << '\n';
}

/// Current commit, short form; "unknown" outside a git checkout.
[[nodiscard]] inline std::string git_sha() {
  std::string sha;
  if (FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

/// Append one self-contained run record to the "runs" array of a
/// BENCH_*.json document so the file accumulates a perf trajectory across
/// commits. The record is spliced before the array closer of an existing
/// document; a missing or legacy single-run file is restarted in the
/// accumulating shape. `run_record` must be a complete JSON object,
/// indented for nesting at depth two.
inline void append_json_run(const std::string& path, const std::string& bench_name,
                            const std::string& run_record) {
  std::string existing;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    existing = buf.str();
  }
  const std::string closer = "\n  ]\n}\n";
  const auto tail = existing.rfind(closer);
  std::ofstream out(path, std::ios::trunc);
  if (existing.find("\"runs\": [") != std::string::npos && tail != std::string::npos) {
    out << existing.substr(0, tail) << ",\n" << run_record << closer;
  } else {
    out << "{\n  \"bench\": \"" << bench_name << "\",\n  \"runs\": [\n" << run_record
        << closer;
  }
  std::cout << "appended run to " << path << '\n';
}

}  // namespace gk::bench
