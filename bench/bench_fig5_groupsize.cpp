// Reproduces Fig. 5: "Impact of changing group size on key server".
// At the Table 1 defaults (K = 10, alpha = 0.8), sweeps N from 1K to 256K
// and prints the *relative* rekeying-cost reduction of the QT and TT
// schemes over the one-keytree baseline. The paper reports >22% average
// savings with little sensitivity to N.

#include <iostream>

#include "analytic/two_partition_model.h"
#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace gk;
  bench::banner("Figure 5 — impact of group size",
                "d=4, K=10, alpha=0.8; N swept 1K..256K (relative cost reduction)");

  Table table({"N", "QT reduction %", "TT reduction %"});
  double qt_sum = 0.0;
  double tt_sum = 0.0;
  int count = 0;
  for (double n = 1024.0; n <= 262144.0; n *= 4.0) {
    analytic::TwoPartitionParams p;
    p.group_size = n;
    const double base = analytic::one_keytree_cost(p);
    const double qt_gain = bench::gain_pct(base, analytic::qt_cost(p));
    const double tt_gain = bench::gain_pct(base, analytic::tt_cost(p));
    table.add_row({n, qt_gain, tt_gain}, 2);
    qt_sum += qt_gain;
    tt_sum += tt_gain;
    ++count;
  }
  bench::print_with_csv(table, "Fig. 5: relative rekeying-cost reduction vs N");

  std::cout << "Average reduction: QT " << fmt(qt_sum / count, 1) << "%, TT "
            << fmt(tt_sum / count, 1)
            << "%   (paper: >22% average, roughly flat in N)\n";
  return 0;
}
