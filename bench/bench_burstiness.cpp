// Robustness study (beyond the paper): Appendix B models packet loss as
// independent Bernoulli events, but multicast loss is bursty. Holding each
// receiver's *mean* loss fixed and sweeping burst length shows how far the
// Bernoulli-based results (Fig. 6's gains, the FEC block math) survive
// correlated loss.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "sim/transport_sim.h"

int main() {
  using namespace gk;
  bench::banner("Robustness — bursty (Gilbert-Elliott) loss vs the Bernoulli model",
                "N=4096, ph=20%, pl=2%, alpha=0.3; mean loss held fixed per member");

  Table table({"mean burst (pkts)", "protocol", "one-tree keys/epoch",
               "loss-homog keys/epoch", "homog gain %"});
  for (const double burst : {0.0, 4.0, 16.0}) {
    for (const auto proto : {sim::TransportSimConfig::Protocol::kWkaBkr,
                             sim::TransportSimConfig::Protocol::kProactiveFec}) {
      double one_cost = 0.0;
      double homog_cost = 0.0;
      for (const auto org : {sim::TransportSimConfig::Organization::kOneTree,
                             sim::TransportSimConfig::Organization::kLossHomogenized}) {
        sim::TransportSimConfig config;
        config.organization = org;
        config.protocol = proto;
        config.group_size = 4096;
        config.departures_per_epoch = 16;
        config.high_fraction = 0.3;
        config.mean_burst_packets = burst;
        config.epochs = 10;
        config.warmup_epochs = 2;
        config.seed = 5555;
        const auto result = sim::run_transport_sim(config);
        (org == sim::TransportSimConfig::Organization::kOneTree ? one_cost
                                                                : homog_cost) =
            result.keys_per_epoch.mean();
      }
      table.add_row(
          {burst == 0.0 ? "independent" : fmt(burst, 0),
           proto == sim::TransportSimConfig::Protocol::kWkaBkr ? "WKA-BKR" : "FEC",
           fmt(one_cost, 1), fmt(homog_cost, 1),
           fmt(bench::gain_pct(one_cost, homog_cost), 2)});
    }
  }
  bench::print_with_csv(table, "Loss-homogenization gain vs burst length");

  std::cout << "Finding: WKA-BKR's homogenization gain survives burstiness (it only\n"
               "shrinks — NACK rounds amortize clustered losses), but the FEC gain\n"
               "*inverts*: concentrating the bursty high-loss receivers into one\n"
               "small tree means its FEC blocks lose several shards per burst and\n"
               "the max-deficit retransmissions spiral. The paper's Bernoulli-only\n"
               "analysis (Appendix B) cannot see this; under measured bursty loss,\n"
               "homogenize for NACK transports but re-evaluate before doing it for\n"
               "FEC ones.\n";
  return 0;
}
