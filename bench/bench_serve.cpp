// bench_serve: mass-session load generator for the gkd daemon.
//
// Drives N concurrent member sessions over loopback TCP — by default it
// forks its own daemon (net::SpawnedServer), so client and server each
// stay under the per-process fd ceiling — ramps them all in, then runs
// measured rekey epochs with Zipf-distributed churn (a handful of members
// leave and fresh ones join each epoch, hot members churning most). For
// every epoch it timestamps the kCommit request and each subscriber's
// kRekey arrival, reporting end-to-end rekey-latency percentiles across
// all sessions * epochs, and appends the run to BENCH_serve.json.
//
//   bench_serve --sessions 10000 --epochs 50 --churn 16 --scheme tt --shards 4
//   bench_serve --smoke --expect-zero-evictions       # CI loopback gate
//   bench_serve --connect 127.0.0.1:7100 ...          # drive an external gkd

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/spawn.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::size_t sessions = 10000;
  std::size_t epochs = 50;
  std::size_t churn = 16;
  std::size_t ramp_batch = 512;
  std::string scheme = "tt";
  unsigned shards = 4;
  std::uint64_t seed = 20030519;
  double zipf_s = 1.1;
  std::string connect_host;  ///< empty = fork our own daemon
  std::uint16_t connect_port = 0;
  std::string json_path = "BENCH_serve.json";
  long timeout_ms = 120000;
  bool expect_zero_evictions = false;
  bool write_json = true;
};

/// One generated member connection. The load generator never unwraps key
/// material; it measures delivery, so a session is just an fd, a frame
/// cursor, and fan-out bookkeeping.
struct LoadSession {
  int fd = -1;
  std::uint64_t member = 0;
  gk::net::FrameCursor cursor;
  bool admitted = false;   ///< currently subscribed to the fan-out
  bool departing = false;  ///< kLeave sent; daemon closes us at next commit
  int pending = 0;         ///< fan-out frames owed for the current epoch
};

[[nodiscard]] double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p / 100.0 *
                                            static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

class LoadGen {
 public:
  LoadGen(const Options& options, std::uint16_t port)
      : options_(options), port_(port), rng_(options.seed ^ 0xb0a710adULL) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1 failed");
    control_.connect("127.0.0.1", port_);
    (void)control_.hello(0xC0117201ULL);  // control id: outside the member range
  }

  ~LoadGen() {
    for (auto& [fd, session] : sessions_) ::close(fd);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  void ramp() {
    const auto t0 = Clock::now();
    std::size_t opened = 0;
    while (opened < options_.sessions) {
      const auto batch = std::min(options_.ramp_batch, options_.sessions - opened);
      for (std::size_t i = 0; i < batch; ++i) open_session(next_member_++);
      opened += batch;
      commit_and_drain(nullptr);  // admit the batch; spread the bootstrap cost
      std::cout << "  ramp: " << opened << "/" << options_.sessions << " admitted\r"
                << std::flush;
    }
    ramp_ms_ = std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0)
                   .count();
    std::cout << "\n  ramp complete in " << ramp_ms_ << " ms ("
              << ramp_epochs_ << " bootstrap epochs)\n";
  }

  void run_epochs(std::vector<double>& latencies_us) {
    for (std::size_t e = 0; e < options_.epochs; ++e) {
      churn(options_.churn);
      commit_and_drain(&latencies_us);
      if ((e + 1) % 10 == 0 || e + 1 == options_.epochs)
        std::cout << "  epoch " << (e + 1) << "/" << options_.epochs << ": "
                  << active_count() << " subscribers\n";
    }
  }

  [[nodiscard]] gk::net::ServerCounters finish() {
    auto counters = control_.stats();
    return counters;
  }

  void request_shutdown() { control_.request_shutdown(); }

  [[nodiscard]] long ramp_ms() const noexcept { return ramp_ms_; }

 private:
  [[nodiscard]] std::size_t active_count() const {
    std::size_t n = 0;
    for (const auto& [fd, session] : sessions_)
      if (session->admitted) ++n;
    return n;
  }

  void open_session(std::uint64_t member) {
    auto session = std::make_unique<LoadSession>();
    session->member = member;
    gk::net::Client boot;  // blocking handshake, then the fd goes nonblocking
    boot.connect("127.0.0.1", port_);
    (void)boot.hello(member);
    (void)boot.join(gk::workload::MemberClass::kShort);
    const int fd = release_fd(std::move(boot));
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    session->fd = fd;
    session->admitted = true;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
      throw std::runtime_error("epoll_ctl ADD failed");
    sessions_.emplace(fd, std::move(session));
    members_.push_back(fd);
  }

  /// Steal the connected fd out of a Client without closing it.
  [[nodiscard]] static int release_fd(gk::net::Client&& client) {
    // Client has no release(); dup + close keeps its invariants intact.
    const int fd = client.raw_fd();
    const int kept = ::dup(fd);
    client.close();
    if (kept < 0) throw std::runtime_error("dup failed");
    return kept;
  }

  void churn(std::size_t count) {
    if (count == 0 || members_.empty()) return;
    std::size_t departed = 0;
    std::size_t guard = 0;
    while (departed < count && guard++ < count * 64) {
      const auto pick = rng_.zipf(members_.size(), options_.zipf_s) - 1;
      const int fd = members_[pick];
      const auto it = sessions_.find(fd);
      if (it == sessions_.end() || !it->second->admitted) continue;
      send_frame(*it->second, gk::net::make_empty(gk::net::FrameType::kLeave));
      it->second->admitted = false;
      it->second->departing = true;
      ++departed;
    }
    for (std::size_t i = 0; i < departed; ++i) open_session(next_member_++);
  }

  void send_frame(LoadSession& session, const gk::net::Frame& frame) {
    const auto bytes = gk::net::encode_frame(frame.type, frame.payload);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const auto n =
          ::send(session.fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        throw std::runtime_error("send to daemon failed mid-run");
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Issue one kCommit and drain the fan-out: every admitted session owes
  /// exactly one kRekey frame. Records per-session commit->delivery
  /// latency when `latencies_us` is given.
  void commit_and_drain(std::vector<double>* latencies_us) {
    std::size_t outstanding = 0;
    for (auto& [fd, session] : sessions_)
      if (session->admitted) {
        session->pending = 1;
        ++outstanding;
      }
    const auto t0 = Clock::now();
    control_.send(gk::net::make_empty(gk::net::FrameType::kCommit));
    ++ramp_epochs_;

    const auto deadline = t0 + std::chrono::milliseconds(options_.timeout_ms);
    epoll_event events[512];
    while (outstanding > 0) {
      if (Clock::now() > deadline)
        throw std::runtime_error("timed out waiting for rekey fan-out (" +
                                 std::to_string(outstanding) + " sessions owed)");
      const int ready = ::epoll_wait(epoll_fd_, events, 512, 1000);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("epoll_wait failed");
      }
      for (int i = 0; i < ready; ++i)
        handle_readable(events[i].data.fd, t0, latencies_us, outstanding);
    }
    // All subscribers served; now collect the ack (enqueued after fan-out).
    const auto ack = gk::net::parse_commit_ack(control_.next_frame());
    (void)ack;
  }

  void handle_readable(int fd, Clock::time_point t0, std::vector<double>* latencies_us,
                       std::size_t& outstanding) {
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) return;
    LoadSession& session = *it->second;
    std::uint8_t buffer[64 * 1024];
    bool eof = false;
    for (;;) {
      const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        session.cursor.feed({buffer, static_cast<std::size_t>(n)});
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true;
      break;
    }
    while (auto frame = session.cursor.next()) {
      switch (frame->type) {
        case gk::net::FrameType::kRekey:
          if (session.pending > 0) {
            session.pending = 0;
            --outstanding;
            if (latencies_us != nullptr)
              latencies_us->push_back(
                  std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
          }
          break;
        case gk::net::FrameType::kLeaveAck:
          break;  // departure staged; EOF follows at the next commit
        case gk::net::FrameType::kError: {
          const auto body = gk::net::parse_error(*frame);
          throw std::runtime_error("daemon error frame: " + body.text);
        }
        default:
          break;
      }
    }
    if (eof) {
      if (!session.departing)
        throw std::runtime_error("daemon dropped an active session (evicted?)");
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      ::close(fd);
      sessions_.erase(it);
    }
  }

  Options options_;
  std::uint16_t port_;
  gk::Rng rng_;
  int epoll_fd_ = -1;
  gk::net::Client control_;
  std::unordered_map<int, std::unique_ptr<LoadSession>> sessions_;
  std::vector<int> members_;  ///< fds ever opened; zipf picks land here
  std::uint64_t next_member_ = 1;
  std::size_t ramp_epochs_ = 0;
  long ramp_ms_ = 0;
};

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--sessions") {
      options.sessions = std::stoul(next());
    } else if (arg == "--epochs") {
      options.epochs = std::stoul(next());
    } else if (arg == "--churn") {
      options.churn = std::stoul(next());
    } else if (arg == "--ramp-batch") {
      options.ramp_batch = std::stoul(next());
    } else if (arg == "--scheme") {
      options.scheme = next();
    } else if (arg == "--shards") {
      options.shards = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--seed") {
      options.seed = std::stoull(next());
    } else if (arg == "--zipf-s") {
      options.zipf_s = std::stod(next());
    } else if (arg == "--timeout-ms") {
      options.timeout_ms = std::stol(next());
    } else if (arg == "--json") {
      options.json_path = next();
    } else if (arg == "--no-json") {
      options.write_json = false;
    } else if (arg == "--expect-zero-evictions") {
      options.expect_zero_evictions = true;
    } else if (arg == "--smoke") {
      options.sessions = 400;
      options.epochs = 8;
      options.churn = 8;
      options.ramp_batch = 128;
    } else if (arg == "--connect") {
      const auto hostport = next();
      const auto colon = hostport.rfind(':');
      if (colon == std::string::npos)
        throw std::runtime_error("--connect wants HOST:PORT");
      options.connect_host = hostport.substr(0, colon);
      options.connect_port =
          static_cast<std::uint16_t>(std::stoul(hostport.substr(colon + 1)));
    } else {
      throw std::runtime_error("unknown option " + arg);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    options = parse_args(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "bench_serve: " << error.what() << "\n";
    return 2;
  }

  // One fd per session here plus one in the daemon; degrade the run
  // rather than dying on EMFILE in a low-ulimit environment.
  const std::size_t fd_cap = gk::net::raise_fd_limit();
  if (fd_cap < options.sessions + 1024) {
    options.sessions = fd_cap > 2048 ? fd_cap - 1024 : 1024;
    std::cout << "bench_serve: fd limit " << fd_cap << " caps sessions at "
              << options.sessions << "\n";
  }

  std::cout << "bench_serve: " << options.sessions << " sessions, " << options.epochs
            << " epochs, churn " << options.churn << "/epoch, scheme "
            << options.scheme << " x" << options.shards << " shards\n";

  std::unique_ptr<gk::net::SpawnedServer> daemon;
  std::uint16_t port = options.connect_port;
  if (options.connect_host.empty()) {
    gk::net::ServerConfig config;
    config.scheme = options.scheme;
    config.shards = options.shards;
    config.seed = options.seed;
    daemon = std::make_unique<gk::net::SpawnedServer>(config);
    port = daemon->port();
    std::cout << "  forked gkd on 127.0.0.1:" << port << "\n";
  }

  std::vector<double> latencies_us;
  gk::net::ServerCounters counters;
  long ramp_ms = 0;
  try {
    LoadGen generator(options, port);
    generator.ramp();
    generator.run_epochs(latencies_us);
    counters = generator.finish();
    ramp_ms = generator.ramp_ms();
    if (daemon) generator.request_shutdown();
  } catch (const std::exception& error) {
    std::cerr << "bench_serve: FAILED: " << error.what() << "\n";
    return 1;
  }
  if (daemon) daemon->terminate();

  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = percentile(latencies_us, 50);
  const double p90 = percentile(latencies_us, 90);
  const double p99 = percentile(latencies_us, 99);
  const double worst = latencies_us.empty() ? 0.0 : latencies_us.back();
  std::cout << "  rekey latency over " << latencies_us.size() << " deliveries (us): "
            << "p50=" << p50 << " p90=" << p90 << " p99=" << p99 << " max=" << worst
            << "\n  daemon counters: epochs=" << counters.epochs_committed
            << " joins=" << counters.joins << " leaves=" << counters.leaves
            << " evictions=" << counters.evictions
            << " rekey_bytes=" << counters.rekey_bytes_sent << "\n";

  if (options.write_json) {
    std::ostringstream record;
    record << "    {\n"
           << "      \"sha\": \"" << gk::bench::git_sha() << "\",\n"
           << "      \"cpu\": \"" << gk::bench::cpu_tag() << "\",\n"
           << "      \"scheme\": \"" << options.scheme << "\",\n"
           << "      \"shards\": " << options.shards << ",\n"
           << "      \"sessions\": " << options.sessions << ",\n"
           << "      \"epochs\": " << options.epochs << ",\n"
           << "      \"churn_per_epoch\": " << options.churn << ",\n"
           << "      \"ramp_ms\": " << ramp_ms << ",\n"
           << "      \"deliveries\": " << latencies_us.size() << ",\n"
           << "      \"rekey_latency_us\": {\"p50\": " << p50 << ", \"p90\": " << p90
           << ", \"p99\": " << p99 << ", \"max\": " << worst << "},\n"
           << "      \"rekey_bytes_sent\": " << counters.rekey_bytes_sent << ",\n"
           << "      \"resyncs\": " << counters.resyncs << ",\n"
           << "      \"evictions\": " << counters.evictions << "\n"
           << "    }";
    gk::bench::append_json_run(options.json_path, "bench_serve", record.str());
  }

  if (options.expect_zero_evictions && counters.evictions != 0) {
    std::cerr << "bench_serve: FAILED: " << counters.evictions
              << " evictions at nominal load (expected zero)\n";
    return 1;
  }
  std::cout << "bench_serve: OK\n";
  return 0;
}
