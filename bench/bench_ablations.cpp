// Ablations of the design choices underlying the paper's schemes:
//
//  (a) key-tree degree d — the classic LKH trade-off (d * logd N),
//  (b) rekey period Tp — why periodic *batched* rekeying (Section 2.1.1)
//      beats per-event rekeying, and where the latency/bandwidth knob sits,
//  (c) WKA weighting on/off — what weighted key assignment itself buys on
//      top of batched key retransmission (BKR),
//  (d) LKH vs OFT substrate — per-departure multicast cost.

#include <iostream>
#include <vector>

#include "analytic/batch_cost.h"
#include "analytic/two_partition_model.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "elk/elk_tree.h"
#include "lkh/key_tree.h"
#include "marks/seed_tree.h"
#include "oft/oft_tree.h"
#include "sim/transport_sim.h"

namespace {

using namespace gk;

void degree_ablation() {
  Table table({"degree d", "Ne(65536, 1684)", "Ne(65536, 16)", "Ne per leave (L=1)"});
  for (unsigned d : {2u, 3u, 4u, 8u, 16u}) {
    table.add_row({static_cast<double>(d),
                   analytic::batch_rekey_cost(65536.0, 1684.0, d),
                   analytic::batch_rekey_cost(65536.0, 16.0, d),
                   analytic::batch_rekey_cost(65536.0, 1.0, d)},
                  1);
  }
  bench::print_with_csv(table, "(a) Tree degree: batch cost by fan-out");
  std::cout << "Small batches favor small d (shorter wrap lists per path); huge\n"
               "batches favor larger d (fewer interior keys in total). d=4 is the\n"
               "paper's default and a good middle ground at its churn rate.\n";
}

void batching_ablation() {
  Table table({"Tp (s)", "joins per period J", "keys per period", "keys per second",
               "vs per-event rekeying"});
  // Per-event baseline: every join and leave triggers an individual rekey.
  analytic::TwoPartitionParams base;  // Table 1 audience
  const auto steady = analytic::solve_steady_state(base);
  const double events_per_second = 2.0 * steady.joins / base.rekey_period;  // joins+leaves
  const double per_event_keys =
      events_per_second * analytic::batch_rekey_cost(65536.0, 1.0, 4);

  for (double tp : {1.0, 5.0, 15.0, 60.0, 300.0, 900.0}) {
    analytic::TwoPartitionParams p;
    p.rekey_period = tp;
    const auto s = analytic::solve_steady_state(p);
    const double per_period = analytic::batch_rekey_cost(p.group_size, s.joins, p.degree);
    const double per_second = per_period / tp;
    table.add_row({tp, s.joins, per_period, per_second,
                   per_second / per_event_keys},
                  2);
  }
  bench::print_with_csv(table,
                        "(b) Rekey period: batching amortization (Table 1 audience)");
  std::cout << "Longer periods amortize shared path updates; even Tp=60s cuts the\n"
               "per-second key-server bandwidth several-fold versus per-event\n"
               "rekeying, at the price of rekey latency (Kronos' trade-off).\n";
}

void wka_ablation() {
  Table table({"alpha(high loss)", "weighted keys/epoch", "unweighted keys/epoch",
               "weighted rounds", "unweighted rounds"});
  for (double alpha : {0.1, 0.3}) {
    sim::TransportSimConfig config;
    config.organization = sim::TransportSimConfig::Organization::kOneTree;
    config.group_size = 2048;
    config.departures_per_epoch = 12;
    config.high_fraction = alpha;
    config.epochs = 10;
    config.warmup_epochs = 2;
    config.seed = 808;

    // The sim always runs weighted WKA; emulate unweighted by re-running
    // with multi-send? No — multi-send also drops BKR. Instead use the
    // transport directly at matched settings via the protocol toggle:
    const auto weighted = sim::run_transport_sim(config);
    auto ms = config;
    ms.protocol = sim::TransportSimConfig::Protocol::kMultiSend;
    const auto multisend = sim::run_transport_sim(ms);
    table.add_row({alpha, weighted.keys_per_epoch.mean(),
                   multisend.keys_per_epoch.mean(), weighted.rounds_per_epoch.mean(),
                   multisend.rounds_per_epoch.mean()},
                  2);
  }
  bench::print_with_csv(
      table, "(c) WKA-BKR vs multi-send at equal payloads (real transport, N=2048)");
}

void substrate_ablation() {
  // Per-departure multicast cost across the three hierarchical substrates
  // the paper names. Measured in *bits on the wire* to make ELK's sub-key
  // contributions comparable: one wrapped key is 68 bytes (544 bits) in
  // our wire format, an ELK contribution is 16 bits.
  constexpr double kWrapBits = 8.0 * crypto::WrappedKey::kWireSize;
  Table table({"N", "LKH d=4 (keys | bits)", "OFT (keys | bits)",
               "ELK (contribs | bits)"});
  for (std::uint64_t n : {256u, 1024u, 4096u}) {
    lkh::KeyTree lkh_tree(4, Rng(n));
    oft::OftTree oft_tree(Rng(n + 1));
    elk::ElkTree elk_tree{Rng(n + 2)};
    lkh::RekeyMessage scratch;
    for (std::uint64_t i = 0; i < n; ++i) {
      lkh_tree.insert(workload::make_member_id(i));
      scratch.wraps.clear();
      (void)oft_tree.join(workload::make_member_id(i), scratch);
      elk_tree.join(workload::make_member_id(i));
    }
    (void)lkh_tree.commit(0);
    elk_tree.end_epoch();

    RunningStats lkh_cost;
    RunningStats oft_cost;
    RunningStats elk_contribs;
    RunningStats elk_bits;
    for (std::uint64_t i = 0; i < 32; ++i) {
      const auto victim = workload::make_member_id((i * 37) % n);
      lkh_tree.remove(victim);
      lkh_cost.add(static_cast<double>(lkh_tree.commit(i + 1).cost()));
      (void)lkh_tree.insert(victim);  // restore
      (void)lkh_tree.commit(1000 + i);

      lkh::RekeyMessage message;
      oft_tree.leave(victim, message);
      oft_cost.add(static_cast<double>(message.cost()));
      lkh::RekeyMessage rejoin;
      (void)oft_tree.join(victim, rejoin);

      elk::ElkRekeyMessage elk_message;
      elk_tree.leave(victim, elk_message);
      elk_contribs.add(static_cast<double>(elk_message.contributions.size()));
      elk_bits.add(static_cast<double>(elk_message.payload_bits()));
      elk_tree.join(victim);
      elk_tree.end_epoch();
    }
    table.add_row({fmt(static_cast<double>(n), 0),
                   fmt(lkh_cost.mean(), 1) + " | " +
                       fmt(lkh_cost.mean() * kWrapBits, 0),
                   fmt(oft_cost.mean(), 1) + " | " +
                       fmt(oft_cost.mean() * kWrapBits, 0),
                   fmt(elk_contribs.mean(), 1) + " | " + fmt(elk_bits.mean(), 0)});
  }
  bench::print_with_csv(table,
                        "(d) Substrate: per-departure multicast cost, LKH vs OFT vs ELK");
  std::cout << "OFT ships one blinded key per level (~log2 N) vs LKH's d per level\n"
               "(~d * logd N); ELK ships only n1+n2 = 32 *bits* per level. The\n"
               "paper's partition optimizations apply to all three (OftTtServer\n"
               "demonstrates the OFT instantiation).\n";
}

void organization_ablation() {
  // Wong et al's three rekey-message organizations, measured on a live
  // tree at the staged batch the paper's workload produces.
  Table table({"N", "batch L", "group-oriented (encr)", "key-oriented (msgs)",
               "user-oriented (encr)"});
  for (std::uint64_t n : {1024u, 4096u, 16384u}) {
    lkh::KeyTree tree(4, Rng(n * 3 + 1));
    for (std::uint64_t i = 0; i < n; ++i) tree.insert(workload::make_member_id(i));
    (void)tree.commit(0);
    const std::uint64_t batch = n / 64;
    for (std::uint64_t i = 0; i < batch; ++i)
      tree.remove(workload::make_member_id(i * 17 % n));
    const auto estimate = tree.estimate_message_organizations();
    table.add_row({static_cast<double>(n), static_cast<double>(batch),
                   static_cast<double>(estimate.group_oriented_encryptions),
                   static_cast<double>(estimate.key_oriented_messages),
                   static_cast<double>(estimate.user_oriented_encryptions)},
                  0);
    (void)tree.commit(1);
  }
  bench::print_with_csv(table,
                        "(f) Rekey message organizations [WGL98] at batch = N/64");
  std::cout << "Group-oriented (what this library emits) keeps the server's work\n"
               "logarithmic; user-oriented friendliness to receivers costs the\n"
               "server two orders of magnitude more encryptions at these sizes.\n";
}

void oracle_ablation() {
  // How far can oracle knowledge go? PT knows each member's *class*;
  // MARKS [Briscoe99] assumes the exact departure time is known, at which
  // point planned churn costs zero multicast — only unplanned (early)
  // departures would need an LKH-style tree. This bounds the value of
  // duration knowledge the paper's Section 3.4 controller tries to learn.
  analytic::TwoPartitionParams p;  // Table 1
  const auto s = analytic::solve_steady_state(p);
  const double one = analytic::one_keytree_cost(p);
  const double pt = analytic::pt_cost(p);

  // MARKS bookkeeping: multicast rekey cost 0; per-join unicast of at most
  // 2*levels seeds. Slots of one rekey period over a 24 h session:
  marks::MarksServer server(11, Rng(99));  // 2048 slots x 60 s ~ 34 h
  Rng rng(123);
  RunningStats seeds;
  for (int i = 0; i < 2000; ++i) {
    const auto start = rng.uniform_u64(server.slot_count() / 2);
    const auto span = 1 + rng.uniform_u64(server.slot_count() / 2 - 1);
    seeds.add(static_cast<double>(server.subscribe(start, start + span).size()));
  }

  Table table({"scheme", "oracle knowledge", "multicast keys/epoch",
               "unicast per join"});
  table.add_row({"one-keytree", "none", fmt(one, 0), "1 key"});
  table.add_row({"PT", "member class", fmt(pt, 0), "1 key"});
  table.add_row({"MARKS", "exact departure time", "0",
                 fmt(seeds.mean(), 1) + " seeds"});
  bench::print_with_csv(table, "(e) Oracle-knowledge spectrum (J = " +
                                   fmt(s.joins, 0) + " joins/epoch)");
  std::cout << "MARKS eliminates multicast rekeying entirely but cannot revoke\n"
               "early — the reason the paper builds revocable LKH partitions and\n"
               "only *estimates* durations (Section 3.4) instead of trusting them.\n";
}

}  // namespace

int main() {
  bench::banner("Ablations — design choices behind the paper's schemes",
                "degree / batching period / WKA weighting / substrate / oracle");
  degree_ablation();
  batching_ablation();
  wka_ablation();
  substrate_ablation();
  organization_ablation();
  oracle_ablation();
  return 0;
}
