// Reproduces Fig. 4: "Impact of the heterogeneity of membership durations".
// Fixes K = 10 and sweeps alpha (fraction of class Cs members) from 0 to 1.
// The paper's headline: up to 31.4% improvement at alpha = 0.9; one-keytree
// wins for alpha <= 0.4.

#include <algorithm>
#include <iostream>

#include "analytic/two_partition_model.h"
#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace gk;
  bench::banner("Figure 4 — impact of membership heterogeneity",
                "N=65536, d=4, K=10; alpha swept 0..1");

  Table table({"alpha", "One-keytree", "QT", "TT", "PT", "best gain %"});
  double peak_gain = 0.0;
  double peak_alpha = 0.0;
  for (int i = 0; i <= 20; ++i) {
    analytic::TwoPartitionParams p;
    p.short_fraction = static_cast<double>(i) / 20.0;
    const double base = analytic::one_keytree_cost(p);
    const double qt = analytic::qt_cost(p);
    const double tt = analytic::tt_cost(p);
    const double pt = analytic::pt_cost(p);
    const double best = bench::gain_pct(base, std::min(qt, tt));
    if (best > peak_gain) {
      peak_gain = best;
      peak_alpha = p.short_fraction;
    }
    table.add_row({p.short_fraction, base, qt, tt, pt, best}, 2);
  }
  bench::print_with_csv(table, "Fig. 4: rekeying cost vs fraction of class Cs members");

  std::cout << "Measured peak deterministic-scheme gain: " << fmt(peak_gain, 1)
            << "% at alpha = " << fmt(peak_alpha, 2)
            << "   (paper: up to 31.4% at alpha = 0.9)\n";
  std::cout << "Crossover check: schemes should lose to one-keytree for alpha <= 0.4 "
               "and win for alpha >= 0.6, as in the paper.\n";
  return 0;
}
