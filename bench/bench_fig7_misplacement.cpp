// Reproduces Fig. 7: "Impact of misplacement of members when organizing key
// trees". ph=20%, pl=2%, alpha=0.2; beta (fraction of each class misplaced
// into the other tree) swept 0..1. Tree sizes stay invariant; only the loss
// composition inside each tree degrades.

#include <iostream>

#include "analytic/wka_bkr_model.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/transport_sim.h"

namespace {

constexpr double kLow = 0.02;
constexpr double kHigh = 0.20;
constexpr double kAlpha = 0.2;
constexpr double kN = 65536.0;
constexpr double kL = 256.0;

double one_tree() {
  gk::analytic::WkaBkrParams p;
  p.members = kN;
  p.departures = kL;
  p.losses = {{kLow, 1.0 - kAlpha}, {kHigh, kAlpha}};
  return gk::analytic::wka_bkr_cost(p);
}

double partitioned(double beta) {
  // High tree holds alpha*N members: (1-beta) genuinely high-loss, beta
  // swapped-in low-loss. The low tree mirrors the swap: beta*alpha*N of its
  // (1-alpha)*N members are actually high-loss.
  gk::analytic::WkaBkrParams high;
  high.members = kAlpha * kN;
  high.departures = kAlpha * kL;
  high.losses = {{kHigh, 1.0 - beta}, {kLow, beta}};

  const double low_high_fraction = beta * kAlpha / (1.0 - kAlpha);
  gk::analytic::WkaBkrParams low;
  low.members = (1.0 - kAlpha) * kN;
  low.departures = (1.0 - kAlpha) * kL;
  low.losses = {{kLow, 1.0 - low_high_fraction}, {kHigh, low_high_fraction}};

  return gk::analytic::wka_bkr_forest_cost({low, high});
}

}  // namespace

int main() {
  using namespace gk;
  bench::banner("Figure 7 — impact of member misplacement",
                "N=65536, L=256, d=4, ph=20%, pl=2%, alpha=0.2; beta swept 0..1");

  const double baseline = one_tree();
  const double correct = partitioned(0.0);

  Table table({"beta", "One-keytree", "Mis-partitioned", "Correctly-partitioned",
               "gain vs one-keytree %"});
  for (int i = 0; i <= 20; ++i) {
    const double beta = static_cast<double>(i) / 20.0;
    const double mis = partitioned(beta);
    table.add_row({beta, baseline, mis, correct, bench::gain_pct(baseline, mis)}, 2);
  }
  bench::print_with_csv(table, "Fig. 7 (analytic): cost vs fraction of misplaced members");

  std::cout << "Paper reference: correct partitioning wins; the scheme degrades as\n"
               "beta grows, falls slightly below one-keytree near beta=0.8, and\n"
               "recovers at beta=1.0 (the swapped low-loss members make the 'high'\n"
               "tree cheap).\n";

  // End-to-end simulation with misreported loss rates at N=4096.
  Table simtab({"beta", "keys/epoch (sim, homogenized)", "keys/epoch (sim, one-tree)"});
  sim::TransportSimConfig one;
  one.organization = sim::TransportSimConfig::Organization::kOneTree;
  one.group_size = 4096;
  one.high_fraction = kAlpha;
  one.epochs = 10;
  one.warmup_epochs = 2;
  one.seed = 777;
  const auto one_result = sim::run_transport_sim(one);
  for (const double beta : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    auto config = one;
    config.organization = sim::TransportSimConfig::Organization::kLossHomogenized;
    config.misreport_fraction = beta;
    const auto result = sim::run_transport_sim(config);
    simtab.add_row({fmt(beta, 1), fmt(result.keys_per_epoch.mean(), 1),
                    fmt(one_result.keys_per_epoch.mean(), 1)});
  }
  bench::print_with_csv(simtab, "Fig. 7 cross-validation (real transport, N=4096)");
  return 0;
}
