// Reproduces Table 1 ("Default Parameter values for evaluation of the
// two-partition algorithm") and reports the steady-state solution of the
// Section 3.3.1 queueing model at those defaults.

#include <iostream>

#include "analytic/two_partition_model.h"
#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace gk;
  bench::banner("Table 1 — default parameters",
                "Two-partition model defaults and derived steady-state flows");

  const analytic::TwoPartitionParams p;  // defaults == Table 1

  Table params({"parameter", "symbol", "value"});
  params.add_row({std::string("Rekeying period"), "Tp", fmt(p.rekey_period, 0) + " s"});
  params.add_row({std::string("Group size"), "N", fmt(p.group_size, 0)});
  params.add_row({std::string("Key tree degree"), "d", std::to_string(p.degree)});
  params.add_row({std::string("S-period epochs"), "K = Ts/Tp",
                  std::to_string(p.s_period_epochs)});
  params.add_row({std::string("Short-class mean"), "Ms", fmt(p.short_mean / 60.0, 0) +
                  " minutes"});
  params.add_row({std::string("Long-class mean"), "Ml", fmt(p.long_mean / 3600.0, 0) +
                  " hours"});
  params.add_row({std::string("Fraction of class Cs"), "alpha", fmt(p.short_fraction, 1)});
  bench::print_with_csv(params, "Table 1: default parameter values");

  const auto s = analytic::solve_steady_state(p);
  Table flows({"quantity", "symbol", "per-epoch value"});
  flows.add_row({std::string("Join rate"), "J", fmt(s.joins, 1)});
  flows.add_row({std::string("Class Cs population"), "Ncs", fmt(s.class_short_pop, 0)});
  flows.add_row({std::string("Class Cl population"), "Ncl", fmt(s.class_long_pop, 0)});
  flows.add_row({std::string("S-partition population"), "Ns", fmt(s.s_partition_pop, 0)});
  flows.add_row({std::string("L-partition population"), "Nl", fmt(s.l_partition_pop, 0)});
  flows.add_row({std::string("S-partition departures"), "Ls", fmt(s.s_departures, 1)});
  flows.add_row({std::string("Migrations (== Ll)"), "Lm", fmt(s.migrations, 1)});
  bench::print_with_csv(flows, "Derived steady state (equations 1-7)");

  Table costs({"scheme", "cost (#keys/epoch)", "gain vs one-keytree (%)"});
  const double base = analytic::one_keytree_cost(p);
  costs.add_row({std::string("One-keytree"), fmt(base, 0), fmt(0.0, 1)});
  costs.add_row({std::string("QT"), fmt(analytic::qt_cost(p), 0),
                 fmt(bench::gain_pct(base, analytic::qt_cost(p)), 1)});
  costs.add_row({std::string("TT"), fmt(analytic::tt_cost(p), 0),
                 fmt(bench::gain_pct(base, analytic::tt_cost(p)), 1)});
  costs.add_row({std::string("PT"), fmt(analytic::pt_cost(p), 0),
                 fmt(bench::gain_pct(base, analytic::pt_cost(p)), 1)});
  bench::print_with_csv(costs, "Per-epoch rekeying cost at the Table 1 operating point");
  return 0;
}
