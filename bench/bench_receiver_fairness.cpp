// Section 4.4's closing discussion: combine loss-homogenized key trees with
// one multicast group *per tree* [YSI99] and the receivers — not just the
// key server — save bandwidth, because the sparseness property means a
// low-loss member never even hears the heavily replicated packets destined
// for the high-loss tree. This bench quantifies that inter-receiver
// fairness effect with the real WKA-BKR transport.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "sim/transport_sim.h"

int main() {
  using namespace gk;
  bench::banner("Section 4.4 — receiver-side load with per-tree multicast groups",
                "N=4096, ph=20%, pl=2%, WKA-BKR; packets offered per member per epoch");

  Table table({"alpha", "organization", "single group", "own group (mean)",
               "low-loss tree members", "high-loss tree members"});
  for (const double alpha : {0.1, 0.25, 0.5}) {
    for (const auto org : {sim::TransportSimConfig::Organization::kOneTree,
                           sim::TransportSimConfig::Organization::kLossHomogenized}) {
      sim::TransportSimConfig config;
      config.organization = org;
      config.group_size = 4096;
      config.departures_per_epoch = 16;
      config.high_fraction = alpha;
      config.epochs = 10;
      config.warmup_epochs = 2;
      config.seed = 1234;
      const auto result = sim::run_transport_sim(config);

      const bool split =
          org == sim::TransportSimConfig::Organization::kLossHomogenized;
      table.add_row(
          {fmt(alpha, 2), split ? "two loss-homogenized" : "one tree",
           fmt(result.offered_single_group.mean(), 1),
           fmt(result.offered_own_group.mean(), 1),
           split && result.offered_by_tree.size() > 0
               ? fmt(result.offered_by_tree[0].mean(), 1)
               : "-",
           split && result.offered_by_tree.size() > 1
               ? fmt(result.offered_by_tree[1].mean(), 1)
               : "-"});
    }
  }
  bench::print_with_csv(table, "Receiver-side packets offered per epoch");

  std::cout << "With one shared group, every member is offered every packet —\n"
               "including the replication provisioned for the other loss class.\n"
               "Per-tree groups confine members to their own tree's sessions (plus\n"
               "the small shared group-key session): low-loss members' offered load\n"
               "drops the most, the paper's inter-receiver fairness point.\n";
  return 0;
}
